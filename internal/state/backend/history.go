package backend

import (
	"bytes"
	"sort"

	"scmove/internal/hashing"
)

// history is the retained-root reverse-diff ring shared by both backends.
// Entry i holds the root committed by block i of the window together with
// the values that commit overwrote, so the flat state at any retained root
// can be reconstructed by overlaying reverse diffs (newest-first) on top of
// the latest state.
type history struct {
	retain int
	roots  []hashing.Hash // oldest..newest committed roots
	diffs  []revDiff      // diffs[i]: values overwritten by the commit of roots[i]
}

// revDiff is one commit's reverse diff. It retains the commit batch's own
// change slices instead of copying them into maps: recording must cost the
// hot commit path nothing, while overlayAt — only reached through the rare
// historical-proof paths — folds the slices into lookup maps on demand.
// Keys are unique within one batch (the committer deduplicates per block),
// so slice order within a diff carries no meaning.
type revDiff struct {
	accounts []AccountChange
	slots    []SlotChange
}

type accPrev struct {
	enc []byte // nil = account was absent before the commit
}

type slotPrev struct {
	val     Word
	existed bool
}

func newHistory(retain int) *history {
	if retain <= 0 {
		retain = DefaultRetainRoots
	}
	return &history{retain: retain}
}

// record appends the reverse diff of one commit and trims the window. The
// batch's slices are retained as-is (not copied): committers build a fresh
// batch per commit and never mutate it afterwards.
func (h *history) record(root hashing.Hash, batch Batch) {
	h.roots = append(h.roots, root)
	h.diffs = append(h.diffs, revDiff{accounts: batch.Accounts, slots: batch.Slots})
	if len(h.roots) > h.retain {
		n := len(h.roots) - h.retain
		h.roots = append(h.roots[:0:0], h.roots[n:]...)
		h.diffs = append(h.diffs[:0:0], h.diffs[n:]...)
	}
}

func (h *history) latestRoot() (hashing.Hash, bool) {
	if len(h.roots) == 0 {
		return hashing.Hash{}, false
	}
	return h.roots[len(h.roots)-1], true
}

func (h *history) retainedRoots() []hashing.Hash {
	out := make([]hashing.Hash, len(h.roots))
	copy(out, h.roots)
	return out
}

// overlayAt folds the reverse diffs newer than root into one overlay, or
// reports the root unknown. The newest occurrence of a recurring root wins
// (roots are canonical: equal roots mean equal contents, so any occurrence
// yields the same view and the newest needs the fewest diffs).
func (h *history) overlayAt(root hashing.Hash) (*overlay, error) {
	at := -1
	for i := len(h.roots) - 1; i >= 0; i-- {
		if h.roots[i] == root {
			at = i
			break
		}
	}
	if at < 0 {
		return nil, ErrRootNotRetained
	}
	ov := &overlay{
		accounts: make(map[hashing.Address]accPrev),
		slots:    make(map[SlotKey]slotPrev),
	}
	// Walk the commits after the target oldest-first: the value the state
	// held at the target root is the one the *first* later commit replaced.
	for i := at + 1; i < len(h.diffs); i++ {
		for _, ac := range h.diffs[i].accounts {
			if _, ok := ov.accounts[ac.Addr]; !ok {
				ov.accounts[ac.Addr] = accPrev{enc: ac.Prev}
			}
		}
		for _, sc := range h.diffs[i].slots {
			if _, ok := ov.slots[sc.Key]; !ok {
				ov.slots[sc.Key] = slotPrev{val: sc.Prev, existed: sc.PrevExisted}
			}
		}
	}
	return ov, nil
}

// overlay is the composed reverse diff between the latest state and one
// retained root: every key present here had a different value at that root.
type overlay struct {
	accounts map[hashing.Address]accPrev
	slots    map[SlotKey]slotPrev
}

// histReader overlays a composed reverse diff on the backend's latest flat
// state, yielding the state as of a retained root. Valid until the next
// Commit (the overlay maps are immutable, but the base moves).
type histReader struct {
	base Reader
	ov   *overlay
}

var _ Reader = (*histReader)(nil)

func (r *histReader) Account(addr hashing.Address) ([]byte, bool) {
	if prev, ok := r.ov.accounts[addr]; ok {
		return prev.enc, prev.enc != nil
	}
	return r.base.Account(addr)
}

func (r *histReader) Slot(k SlotKey) (Word, bool) {
	if prev, ok := r.ov.slots[k]; ok {
		return prev.val, prev.existed
	}
	return r.base.Slot(k)
}

func (r *histReader) IterateAccounts(fn func(addr hashing.Address, enc []byte) bool) {
	// Merge the base's sorted walk with the overlay's sorted keys: overlay
	// entries replace (or hide) base entries and resurrect accounts the
	// later commits deleted from the base.
	ovAddrs := make([]hashing.Address, 0, len(r.ov.accounts))
	for addr := range r.ov.accounts {
		ovAddrs = append(ovAddrs, addr)
	}
	sort.Slice(ovAddrs, func(i, j int) bool {
		return bytes.Compare(ovAddrs[i][:], ovAddrs[j][:]) < 0
	})
	i := 0
	emitOverlayUpTo := func(limit *hashing.Address) bool {
		for i < len(ovAddrs) {
			addr := ovAddrs[i]
			if limit != nil && bytes.Compare(addr[:], (*limit)[:]) >= 0 {
				return true
			}
			i++
			if prev := r.ov.accounts[addr]; prev.enc != nil {
				if !fn(addr, prev.enc) {
					return false
				}
			}
		}
		return true
	}
	done := false
	r.base.IterateAccounts(func(addr hashing.Address, enc []byte) bool {
		if !emitOverlayUpTo(&addr) {
			done = true
			return false
		}
		if i < len(ovAddrs) && ovAddrs[i] == addr {
			i++
			prev := r.ov.accounts[addr]
			if prev.enc == nil {
				return true // account did not exist at the target root
			}
			return fn(addr, prev.enc)
		}
		return fn(addr, enc)
	})
	if !done {
		emitOverlayUpTo(nil)
	}
}

func (r *histReader) IterateStorage(addr hashing.Address, fn func(key, val Word) bool) {
	ovKeys := make([]Word, 0)
	for k := range r.ov.slots {
		if k.Addr == addr {
			ovKeys = append(ovKeys, k.Key)
		}
	}
	sort.Slice(ovKeys, func(i, j int) bool {
		return bytes.Compare(ovKeys[i][:], ovKeys[j][:]) < 0
	})
	i := 0
	emitOverlayUpTo := func(limit *Word) bool {
		for i < len(ovKeys) {
			key := ovKeys[i]
			if limit != nil && bytes.Compare(key[:], (*limit)[:]) >= 0 {
				return true
			}
			i++
			if prev := r.ov.slots[SlotKey{Addr: addr, Key: key}]; prev.existed {
				if !fn(key, prev.val) {
					return false
				}
			}
		}
		return true
	}
	done := false
	r.base.IterateStorage(addr, func(key, val Word) bool {
		if !emitOverlayUpTo(&key) {
			done = true
			return false
		}
		if i < len(ovKeys) && ovKeys[i] == key {
			i++
			prev := r.ov.slots[SlotKey{Addr: addr, Key: key}]
			if !prev.existed {
				return true // slot was empty at the target root
			}
			return fn(key, prev.val)
		}
		return fn(key, val)
	})
	if !done {
		emitOverlayUpTo(nil)
	}
}
