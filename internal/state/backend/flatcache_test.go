package backend

import "testing"

func TestFlatCacheAccountLRU(t *testing.T) {
	c := NewFlatCache[string](2, 2)
	c.PutAccount(tAddr(1), "one", true)
	c.PutAccount(tAddr(2), "two", true)
	// Touch 1 so 2 is the eviction victim when 3 arrives.
	if v, exists, known := c.Account(tAddr(1)); !known || !exists || v != "one" {
		t.Fatalf("account 1: %q %v %v", v, exists, known)
	}
	c.PutAccount(tAddr(3), "three", true)
	if _, _, known := c.Account(tAddr(2)); known {
		t.Fatal("LRU victim survived")
	}
	for _, want := range []struct {
		a byte
		v string
	}{{1, "one"}, {3, "three"}} {
		if v, exists, known := c.Account(tAddr(want.a)); !known || !exists || v != want.v {
			t.Fatalf("account %d: %q %v %v", want.a, v, exists, known)
		}
	}
}

func TestFlatCacheNegativeAccount(t *testing.T) {
	c := NewFlatCache[string](4, 4)
	c.PutAccount(tAddr(1), "", false)
	if _, exists, known := c.Account(tAddr(1)); !known || exists {
		t.Fatalf("negative entry: exists=%v known=%v", exists, known)
	}
	c.DropAccount(tAddr(1))
	if _, _, known := c.Account(tAddr(1)); known {
		t.Fatal("dropped entry still known")
	}
}

func TestFlatCacheWipeStorageIsPerAddress(t *testing.T) {
	c := NewFlatCache[string](4, 8)
	kA := SlotKey{Addr: tAddr(1), Key: tWord(1)}
	kB := SlotKey{Addr: tAddr(2), Key: tWord(1)}
	c.PutSlot(kA, tWord(10), true)
	c.PutSlot(kB, tWord(20), true)
	c.WipeStorage(tAddr(1))
	if _, _, known := c.Slot(kA); known {
		t.Fatal("wiped slot still known")
	}
	if v, exists, known := c.Slot(kB); !known || !exists || v != tWord(20) {
		t.Fatalf("unrelated slot wiped: %x %v %v", v, exists, known)
	}
	// A fresh write after the wipe is served again.
	c.PutSlot(kA, tWord(11), true)
	if v, exists, known := c.Slot(kA); !known || !exists || v != tWord(11) {
		t.Fatalf("post-wipe slot: %x %v %v", v, exists, known)
	}
}

func TestFlatCacheStats(t *testing.T) {
	c := NewFlatCache[string](4, 4)
	c.Account(tAddr(1)) // miss
	c.PutAccount(tAddr(1), "one", true)
	c.Account(tAddr(1)) // hit
	c.Slot(SlotKey{Addr: tAddr(1), Key: tWord(1)}) // miss
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
	accounts, slots := c.Len()
	if accounts != 1 || slots != 0 {
		t.Fatalf("len: accounts=%d slots=%d", accounts, slots)
	}
}
