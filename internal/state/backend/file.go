package backend

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"scmove/internal/hashing"
)

// File is the log-structured file-backed store: a simplified RocksDB built
// only on the standard library. All writes append to the active segment
// file; an in-memory index maps each account / slot key to the offset of
// its newest value, so point reads are one ReadAt. Overwritten and deleted
// records become dead bytes; once they outweigh the live ones the store
// compacts by rewriting the live set into a fresh segment and deleting the
// old files. Commit markers carry the state root, so a reopened store knows
// which committed root its contents correspond to.
//
// RSS is bounded by the index (a few dozen bytes per live key), not by the
// data: values live on disk until read.
type File struct {
	dir     string
	hist    *history
	segs    map[uint32]*os.File // open segments, by id
	active  uint32              // id of the append segment
	buf     []byte              // batch encode scratch
	written int64               // bytes appended to the active segment

	index     map[string]loc // account (20-byte) and slot (52-byte) keys
	liveBytes int64          // record bytes reachable through the index
	deadBytes int64          // record bytes superseded or deleted
	root      hashing.Hash   // latest committed root
	hasRoot   bool

	// CompactMinBytes is the dead-byte floor below which compaction never
	// triggers (avoids rewriting tiny stores). Tests lower it.
	CompactMinBytes int64

	closed bool
}

// loc locates one live value inside a segment.
type loc struct {
	seg    uint32
	off    int64 // value offset
	vlen   uint32
	reclen uint32 // full record length, for dead-byte accounting
}

var _ Backend = (*File)(nil)

const defaultCompactMinBytes = 4 << 20

// OpenFile opens (or creates) a log-structured store in dir, replaying the
// segments into the in-memory index. A truncated tail record in the newest
// segment — a torn write from a crash — is discarded; corruption anywhere
// else is an error. retain is the OpenAt window (0 = DefaultRetainRoots);
// retained roots do not survive a reopen, only the latest committed state
// does.
func OpenFile(dir string, retain int) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: open %s: %w", dir, err)
	}
	f := &File{
		dir:             dir,
		hist:            newHistory(retain),
		segs:            make(map[uint32]*os.File),
		index:           make(map[string]loc),
		CompactMinBytes: defaultCompactMinBytes,
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := f.replaySegment(id, i == len(ids)-1); err != nil {
			f.Close()
			return nil, err
		}
	}
	if len(ids) == 0 {
		if err := f.openActive(0); err != nil {
			return nil, err
		}
	} else {
		f.active = ids[len(ids)-1]
	}
	return f, nil
}

func segmentPath(dir string, id uint32) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.log", id))
}

// segmentIDs lists the segment files of dir in ascending id order.
func segmentIDs(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("backend: read dir: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"), 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, uint32(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// openActive creates segment id and makes it the append target.
func (f *File) openActive(id uint32) error {
	file, err := os.OpenFile(segmentPath(f.dir, id), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("backend: create segment: %w", err)
	}
	f.segs[id] = file
	f.active = id
	f.written = 0
	return nil
}

// replaySegment loads one existing segment into the index. tail marks the
// newest segment, whose last record may be torn.
func (f *File) replaySegment(id uint32, tail bool) error {
	path := segmentPath(f.dir, id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("backend: replay %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if tail {
				// Torn tail write: drop the partial record and continue
				// appending after the last good one.
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return fmt.Errorf("backend: truncate torn tail of %s: %w", path, terr)
				}
				break
			}
			return fmt.Errorf("backend: replay %s at offset %d: %w", path, off, err)
		}
		f.applyRecord(id, int64(off), rec, n)
		off += n
	}
	file, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("backend: reopen segment: %w", err)
	}
	f.segs[id] = file
	f.written = int64(off)
	return nil
}

// applyRecord folds one decoded record into the index.
func (f *File) applyRecord(seg uint32, off int64, rec record, reclen int) {
	switch rec.Kind {
	case recAccount, recSlot, recCode:
		key := string(rec.Key)
		if old, ok := f.index[key]; ok {
			f.deadBytes += int64(old.reclen)
			f.liveBytes -= int64(old.reclen)
		}
		f.index[key] = loc{
			seg:    seg,
			off:    off + int64(valueOffset(rec)),
			vlen:   uint32(len(rec.Value)),
			reclen: uint32(reclen),
		}
		f.liveBytes += int64(reclen)
	case recAccountDel, recSlotDel:
		key := string(rec.Key)
		if old, ok := f.index[key]; ok {
			f.deadBytes += int64(old.reclen)
			f.liveBytes -= int64(old.reclen)
			delete(f.index, key)
		}
		f.deadBytes += int64(reclen)
	case recCommit:
		copy(f.root[:], rec.Key)
		f.hasRoot = true
		f.deadBytes += int64(reclen) // markers are never live
	}
}

// readValue fetches one live value from its segment.
func (f *File) readValue(l loc) ([]byte, bool) {
	file, ok := f.segs[l.seg]
	if !ok {
		return nil, false
	}
	out := make([]byte, l.vlen)
	if _, err := file.ReadAt(out, l.off); err != nil {
		return nil, false
	}
	return out, true
}

// Account implements Reader.
func (f *File) Account(addr hashing.Address) ([]byte, bool) {
	l, ok := f.index[string(addr[:])]
	if !ok {
		return nil, false
	}
	return f.readValue(l)
}

// Slot implements Reader.
func (f *File) Slot(k SlotKey) (Word, bool) {
	var key [slotSize]byte
	copy(key[:addrSize], k.Addr[:])
	copy(key[addrSize:], k.Key[:])
	l, ok := f.index[string(key[:])]
	if !ok {
		return Word{}, false
	}
	v, ok := f.readValue(l)
	if !ok {
		return Word{}, false
	}
	var w Word
	copy(w[:], v)
	return w, true
}

// sortedKeys returns the index keys of the given length with the given
// prefix, ascending.
func (f *File) sortedKeys(prefix []byte, keyLen int) []string {
	out := make([]string, 0, 64)
	for k := range f.index {
		if len(k) == keyLen && strings.HasPrefix(k, string(prefix)) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// IterateAccounts implements Reader.
func (f *File) IterateAccounts(fn func(addr hashing.Address, enc []byte) bool) {
	for _, k := range f.sortedKeys(nil, addrSize) {
		v, ok := f.readValue(f.index[k])
		if !ok {
			continue
		}
		var addr hashing.Address
		copy(addr[:], k)
		if !fn(addr, v) {
			return
		}
	}
}

// IterateStorage implements Reader.
func (f *File) IterateStorage(addr hashing.Address, fn func(key, val Word) bool) {
	for _, k := range f.sortedKeys(addr[:], slotSize) {
		v, ok := f.readValue(f.index[k])
		if !ok {
			continue
		}
		var key, val Word
		copy(key[:], k[addrSize:])
		copy(val[:], v)
		if !fn(key, val) {
			return
		}
	}
}

// Commit implements Backend: append the batch and a commit marker to the
// active segment, fold it into the index, and compact if the dead-byte
// ratio warrants it.
func (f *File) Commit(root hashing.Hash, batch Batch) error {
	f.buf = f.buf[:0]
	base := f.written
	encOne := func(kind byte, key, value []byte) (int64, int) {
		start := len(f.buf)
		f.buf = appendRecord(f.buf, kind, key, value)
		return base + int64(start), len(f.buf) - start
	}
	var slotKey [slotSize]byte
	for _, ac := range batch.Accounts {
		if ac.Cur != nil {
			off, n := encOne(recAccount, ac.Addr[:], ac.Cur)
			f.applyRecord(f.active, off, record{Kind: recAccount, Key: ac.Addr[:], Value: ac.Cur}, n)
		} else {
			off, n := encOne(recAccountDel, ac.Addr[:], nil)
			f.applyRecord(f.active, off, record{Kind: recAccountDel, Key: ac.Addr[:]}, n)
		}
	}
	for _, sc := range batch.Slots {
		copy(slotKey[:addrSize], sc.Key.Addr[:])
		copy(slotKey[addrSize:], sc.Key.Key[:])
		if sc.CurExists {
			val := sc.Cur
			off, n := encOne(recSlot, slotKey[:], val[:])
			f.applyRecord(f.active, off, record{Kind: recSlot, Key: slotKey[:], Value: val[:]}, n)
		} else {
			off, n := encOne(recSlotDel, slotKey[:], nil)
			f.applyRecord(f.active, off, record{Kind: recSlotDel, Key: slotKey[:]}, n)
		}
	}
	for _, cb := range batch.Codes {
		off, n := encOne(recCode, cb.Hash[:], cb.Code)
		f.applyRecord(f.active, off, record{Kind: recCode, Key: cb.Hash[:], Value: cb.Code}, n)
	}
	off, n := encOne(recCommit, root[:], nil)
	f.applyRecord(f.active, off, record{Kind: recCommit, Key: root[:]}, n)
	if _, err := f.segs[f.active].Write(f.buf); err != nil {
		return fmt.Errorf("backend: append: %w", err)
	}
	f.written += int64(len(f.buf))
	f.hist.record(root, batch)
	if f.deadBytes > f.liveBytes && f.deadBytes > f.CompactMinBytes {
		if err := f.compact(); err != nil {
			return err
		}
	}
	return nil
}

// compact rewrites the live set into a fresh segment and deletes the old
// files. The index is rewritten to point into the new segment; historical
// OpenAt views are unaffected (the reverse-diff ring lives in memory).
func (f *File) compact() error {
	keys := make([]string, 0, len(f.index)+1)
	for k := range f.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	newID := f.active + 1
	path := segmentPath(f.dir, newID)
	out, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("backend: compact: %w", err)
	}
	newIndex := make(map[string]loc, len(f.index))
	var written int64
	var live int64
	f.buf = f.buf[:0]
	flush := func() error {
		if len(f.buf) == 0 {
			return nil
		}
		if _, err := out.Write(f.buf); err != nil {
			return fmt.Errorf("backend: compact write: %w", err)
		}
		f.buf = f.buf[:0]
		return nil
	}
	for _, k := range keys {
		v, ok := f.readValue(f.index[k])
		if !ok {
			out.Close()
			return fmt.Errorf("backend: compact: lost value for key %x", k)
		}
		var kind byte
		switch len(k) {
		case addrSize:
			kind = recAccount
		case slotSize:
			kind = recSlot
		default: // hashing.HashSize: content-addressed code
			kind = recCode
		}
		start := len(f.buf)
		f.buf = appendRecord(f.buf, kind, []byte(k), v)
		reclen := len(f.buf) - start
		rec := record{Kind: kind, Key: []byte(k), Value: v}
		newIndex[k] = loc{
			seg:    newID,
			off:    written + int64(start) + int64(valueOffset(rec)),
			vlen:   uint32(len(v)),
			reclen: uint32(reclen),
		}
		live += int64(reclen)
		if len(f.buf) >= 1<<20 {
			written += int64(len(f.buf))
			if err := flush(); err != nil {
				out.Close()
				return err
			}
		}
	}
	written += int64(len(f.buf))
	if err := flush(); err != nil {
		out.Close()
		return err
	}
	// Re-assert the latest root in the new segment so a reopen of the
	// compacted store still knows it.
	if f.hasRoot {
		f.buf = appendRecord(f.buf[:0], recCommit, f.root[:], nil)
		written += int64(len(f.buf))
		if err := flush(); err != nil {
			out.Close()
			return err
		}
	}
	for id, file := range f.segs {
		file.Close()
		os.Remove(segmentPath(f.dir, id))
		delete(f.segs, id)
	}
	f.segs[newID] = out
	f.active = newID
	f.written = written
	f.index = newIndex
	f.liveBytes = live
	f.deadBytes = 0
	return nil
}

// LatestRoot implements Backend. After a reopen it is the root of the last
// durable commit marker.
func (f *File) LatestRoot() (hashing.Hash, bool) {
	if r, ok := f.hist.latestRoot(); ok {
		return r, true
	}
	return f.root, f.hasRoot
}

// RetainedRoots implements Backend.
func (f *File) RetainedRoots() []hashing.Hash { return f.hist.retainedRoots() }

// OpenAt implements Backend.
func (f *File) OpenAt(root hashing.Hash) (Reader, error) {
	ov, err := f.hist.overlayAt(root)
	if err != nil {
		return nil, err
	}
	return &histReader{base: f, ov: ov}, nil
}

// Kind implements Backend.
func (f *File) Kind() Kind { return KindFile }

// Code implements CodeStore.
func (f *File) Code(h hashing.Hash) ([]byte, bool) {
	l, ok := f.index[string(h[:])]
	if !ok {
		return nil, false
	}
	return f.readValue(l)
}

// IterateCodes implements CodeStore.
func (f *File) IterateCodes(fn func(h hashing.Hash, code []byte) bool) {
	for _, k := range f.sortedKeys(nil, hashing.HashSize) {
		v, ok := f.readValue(f.index[k])
		if !ok {
			continue
		}
		var h hashing.Hash
		copy(h[:], k)
		if !fn(h, v) {
			return
		}
	}
}

// Persistent implements Backend: the segment files hold every live value,
// so trees above may be dropped and rebuilt on demand.
func (f *File) Persistent() bool { return true }

// LiveKeys returns the number of live index entries (accounts + slots).
func (f *File) LiveKeys() int { return len(f.index) }

// SegmentBytes returns the live/dead byte split of the store.
func (f *File) SegmentBytes() (live, dead int64) { return f.liveBytes, f.deadBytes }

// Sync forces the active segment to stable storage.
func (f *File) Sync() error {
	if file, ok := f.segs[f.active]; ok {
		return file.Sync()
	}
	return nil
}

// Close implements Backend. Closing an already-closed store is an error:
// it almost always means two owners both think they are responsible for the
// store's lifecycle, and silently succeeding would hide the double-free.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("backend: store %s already closed", f.dir)
	}
	f.closed = true
	var firstErr error
	for id, file := range f.segs {
		if err := file.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := file.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(f.segs, id)
	}
	return firstErr
}
