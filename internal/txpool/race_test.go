package txpool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/types"
)

// RPC ingress calls Add from arbitrary goroutines while the consensus
// driver drains the pool through NextBatch and Remove. This test pins the
// concurrency contract under -race (`make race`): 8 goroutines hammer Add
// (including idempotent resubmissions) while a drainer repeatedly selects
// and removes, and at the end every transaction was selected exactly once
// — nothing lost, nothing double-selected, no map corruption.
//
// Selected-exactly-once holds despite resubmission races: before a tx's
// first selection a resubmit is rejected as a duplicate, and after it the
// drainer has advanced the sender's committed nonce, so a resubmit that
// lands after Remove is re-admitted but then evicted as stale — never
// re-selected.
func TestConcurrentAddWhileNextBatchDrains(t *testing.T) {
	const (
		goroutines = 8
		perSender  = 64
	)
	p := New(1, goroutines*perSender+16)

	// Pre-sign outside the race so worker goroutines do no shared signing.
	txs := make([][]*types.Transaction, goroutines)
	for g := 0; g < goroutines; g++ {
		kp := keys.Deterministic(uint64(900 + g))
		txs[g] = make([]*types.Transaction, perSender)
		for n := 0; n < perSender; n++ {
			txs[g][n] = signedTx(t, kp, uint64(n))
		}
	}

	var (
		done atomic.Bool
		wg   sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(batch []*types.Transaction) {
			defer wg.Done()
			for _, tx := range batch {
				if err := p.Add(tx); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				// Idempotent resubmission: duplicate while pending, or
				// re-admitted after commit (then evicted as stale).
				if err := p.Add(tx); err != nil && !errors.Is(err, ErrDuplicate) {
					t.Errorf("resubmit: %v", err)
					return
				}
			}
		}(txs[g])
	}

	// Drainer: committed nonces track what has been "executed", exactly as
	// the chain advances account nonces block by block.
	committed := make(map[hashing.Address]uint64)
	nonceOf := func(a hashing.Address) uint64 { return committed[a] }
	selected := make(map[hashing.Hash]int)
	go func() {
		defer done.Store(true)
		wg.Wait()
	}()
	drain := func() {
		batch := p.NextBatch(32, nonceOf)
		for _, tx := range batch {
			sender, err := tx.Sender()
			if err != nil {
				t.Errorf("sender: %v", err)
				return
			}
			committed[sender] = tx.Nonce + 1
			selected[tx.ID()]++
			p.Remove(tx.ID())
		}
	}
	for !done.Load() {
		drain()
	}
	// Workers are done: whatever is left either selects or evicts on each
	// pass, so the pool must strictly shrink to empty.
	for p.Len() > 0 {
		before := p.Len()
		drain()
		if p.Len() >= before {
			t.Fatalf("pool stuck with %d pending", before)
		}
	}

	for g := 0; g < goroutines; g++ {
		for _, tx := range txs[g] {
			if n := selected[tx.ID()]; n != 1 {
				t.Errorf("tx sender %d nonce %d selected %d times, want 1", g, tx.Nonce, n)
			}
		}
	}
	if len(selected) != goroutines*perSender {
		t.Errorf("selected %d distinct txs, want %d", len(selected), goroutines*perSender)
	}
}

// Two goroutines racing the same transaction object must resolve to
// exactly one admission: the post-crypto re-check under the lock prevents
// a double insert even though the duplicate pre-check runs unlocked.
func TestConcurrentSameTxSingleAdmission(t *testing.T) {
	for round := 0; round < 32; round++ {
		p := New(1, 16)
		tx := signedTx(t, keys.Deterministic(uint64(800+round)), 0)
		var ok, dup atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				switch err := p.Add(tx); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrDuplicate):
					dup.Add(1)
				default:
					t.Errorf("Add: %v", err)
				}
			}()
		}
		wg.Wait()
		if ok.Load() != 1 || dup.Load() != 3 {
			t.Fatalf("round %d: %d admissions, %d duplicates; want 1/3", round, ok.Load(), dup.Load())
		}
		if p.Len() != 1 {
			t.Fatalf("round %d: pool len %d, want 1", round, p.Len())
		}
	}
}
