// Package txpool implements the pending-transaction pool of one chain node:
// admission (signature, chain id, duplicate checks), FIFO ordering with
// per-sender nonce sequencing, and batch selection for block proposals.
package txpool

import (
	"errors"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/types"
)

// Errors returned by Add.
var (
	ErrDuplicate = errors.New("txpool: transaction already pending")
	ErrPoolFull  = errors.New("txpool: pool is full")
)

// Pool holds pending transactions for one chain. It is not safe for
// concurrent use; the owning node serializes access on its event loop.
type Pool struct {
	chainID hashing.ChainID
	limit   int

	queue   []*entry
	pending map[hashing.Hash]struct{}
}

type entry struct {
	tx     *types.Transaction
	sender hashing.Address
	id     hashing.Hash // tx.ID() captured at admission; an ID() call encodes and hashes the whole tx
}

// New returns a pool for the given chain holding at most limit transactions.
// The pending set grows on demand: limits are commonly generous (100k) while
// steady-state occupancy is tiny, so sizing the map up front wastes megabytes
// per node.
func New(chainID hashing.ChainID, limit int) *Pool {
	return &Pool{
		chainID: chainID,
		limit:   limit,
		pending: make(map[hashing.Hash]struct{}),
	}
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int { return len(p.queue) }

// Add validates and enqueues a transaction. The signature is recovered
// exactly once, through the types sender cache: stateless checks and the
// duplicate check run first (they are cheap and need no crypto), then a
// single Sender call both authenticates the transaction and yields the
// sender the pool keys nonce sequencing on.
//
// The duplicate check runs before the capacity check: an idempotent
// resubmission of an already-pending transaction must report ErrDuplicate
// even when the pool is full — it consumes no slot, and callers treat
// ErrPoolFull as capacity pressure worth backing off for.
func (p *Pool) Add(tx *types.Transaction) error {
	if err := tx.ValidateStateless(p.chainID); err != nil {
		return fmt.Errorf("admit tx: %w", err)
	}
	id := tx.ID()
	if _, dup := p.pending[id]; dup {
		return ErrDuplicate
	}
	if len(p.queue) >= p.limit {
		return ErrPoolFull
	}
	sender, err := tx.Sender()
	if err != nil {
		return fmt.Errorf("admit tx: %w", err)
	}
	p.pending[id] = struct{}{}
	p.queue = append(p.queue, &entry{tx: tx, sender: sender, id: id})
	return nil
}

// AddBatch admits txs in input order and returns one error slot per
// transaction. All senders are recovered first via types.RecoverSenders, so
// the ECDSA work fans out across the crypto worker pool while admission
// itself — ordering, duplicate, and capacity decisions — stays strictly
// serial and therefore identical to calling Add in a loop.
func (p *Pool) AddBatch(txs []*types.Transaction) []error {
	_, _ = types.RecoverSenders(txs) // warm memo + cache; failures re-surface in Add
	errs := make([]error, len(txs))
	for i, tx := range txs {
		errs[i] = p.Add(tx)
	}
	return errs
}

// Contains reports whether the transaction is pending.
func (p *Pool) Contains(id hashing.Hash) bool {
	_, ok := p.pending[id]
	return ok
}

// NextBatch selects up to max transactions in FIFO order, respecting
// per-sender nonce sequencing against the provided current account nonces:
// a transaction whose nonce is not the sender's next is skipped (left in
// the pool) so it can run in a later block.
//
// Selection does not consume: the batch stays pending until Remove (called
// by the chain when a block commits). A consensus round that fails after
// proposing must not destroy its transactions — under message loss that
// would silently drop client traffic every failed round. Stale entries
// (nonce below the account's *committed* nonce) are evicted here: typically
// idempotent resubmissions of a transaction that already landed, which must
// never re-execute and overwrite a success receipt with a nonce failure.
// Eviction deliberately ignores the speculative next-nonce advanced for
// batch-mates selected in this same pass: those selections are not
// committed yet, and evicting against them would destroy a competing
// same-nonce transaction that must survive if the proposed block fails.
func (p *Pool) NextBatch(max int, nonceOf func(hashing.Address) uint64) []*types.Transaction {
	if max <= 0 {
		return nil
	}
	batch := make([]*types.Transaction, 0, max)
	committed := make(map[hashing.Address]uint64) // account nonce in committed state
	next := make(map[hashing.Address]uint64)      // speculative next nonce for selection
	keep := p.queue[:0]
	for _, e := range p.queue {
		base, seen := committed[e.sender]
		if !seen {
			base = nonceOf(e.sender)
			committed[e.sender] = base
		}
		if e.tx.Nonce < base {
			delete(p.pending, e.id)
			continue
		}
		keep = append(keep, e)
		want, selecting := next[e.sender]
		if !selecting {
			want = base
		}
		if len(batch) >= max || e.tx.Nonce != want {
			continue
		}
		batch = append(batch, e.tx)
		next[e.sender] = want + 1
	}
	p.queue = keep
	return batch
}

// Remove drops a transaction (e.g. once included in a block received from a
// peer proposer).
func (p *Pool) Remove(id hashing.Hash) {
	if _, ok := p.pending[id]; !ok {
		return
	}
	delete(p.pending, id)
	for i, e := range p.queue {
		if e.id == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
}
