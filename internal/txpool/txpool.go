// Package txpool implements the pending-transaction pool of one chain node:
// admission (signature, chain id, duplicate checks), FIFO ordering with
// per-sender nonce sequencing, and batch selection for block proposals.
package txpool

import (
	"errors"
	"fmt"
	"sync"

	"scmove/internal/hashing"
	"scmove/internal/types"
)

// Errors returned by Add.
var (
	ErrDuplicate = errors.New("txpool: transaction already pending")
	ErrPoolFull  = errors.New("txpool: pool is full")
)

// Pool holds pending transactions for one chain. It is safe for concurrent
// use: the discrete-event simulator serializes access on its event loop,
// but the RPC front door calls Add from arbitrary handler goroutines while
// the consensus driver drains via NextBatch/Remove, so every method takes
// an internal mutex. Signature recovery — the expensive ECDSA work — runs
// outside the lock; admission decisions (duplicate, capacity, insertion
// order) are re-checked and applied under it, so single-threaded callers
// observe exactly the historical semantics.
type Pool struct {
	chainID hashing.ChainID
	limit   int

	mu      sync.Mutex
	queue   []*entry
	pending map[hashing.Hash]struct{}

	// Selection scratch reused across NextBatch/NextBatchGrouped calls so
	// the per-proposal hot path allocates nothing beyond the returned
	// slice(s). All are cleared (not freed) between calls.
	selScratch []selRec
	giOf       map[hashing.Address]int    // sender → group index this pass
	nonceMemo  map[hashing.Address]uint64 // committed nonce, one nonceOf per sender
	lastNonce  []uint64                   // per-group last selected nonce
	cntScratch []int                      // per-group selection counts
}

// selRec records one selected transaction during the shared selection pass:
// the pool entry and the group (sender) it chained onto. Selection order is
// the flat FIFO batch order.
type selRec struct {
	e  *entry
	gi int
}

type entry struct {
	tx     *types.Transaction
	sender hashing.Address
	id     hashing.Hash // tx.ID() captured at admission; an ID() call encodes and hashes the whole tx
}

// New returns a pool for the given chain holding at most limit transactions.
// The pending set grows on demand: limits are commonly generous (100k) while
// steady-state occupancy is tiny, so sizing the map up front wastes megabytes
// per node.
func New(chainID hashing.ChainID, limit int) *Pool {
	return &Pool{
		chainID:   chainID,
		limit:     limit,
		pending:   make(map[hashing.Hash]struct{}),
		giOf:      make(map[hashing.Address]int),
		nonceMemo: make(map[hashing.Address]uint64),
	}
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Add validates and enqueues a transaction. The signature is recovered
// exactly once, through the types sender cache: stateless checks and the
// duplicate check run first (they are cheap and need no crypto), then a
// single Sender call both authenticates the transaction and yields the
// sender the pool keys nonce sequencing on.
//
// The duplicate check runs before the capacity check: an idempotent
// resubmission of an already-pending transaction must report ErrDuplicate
// even when the pool is full — it consumes no slot, and callers treat
// ErrPoolFull as capacity pressure worth backing off for.
//
// The duplicate/capacity pre-check and the insertion are two critical
// sections with the ECDSA recovery between them, so the pool mutex is
// never held across crypto (holding it would serialize signature checks
// behind one lock and stall the consensus driver). The insertion section
// re-checks both conditions: two goroutines racing the same transaction
// resolve to exactly one admission and one ErrDuplicate. For a
// single-threaded caller the re-check is a no-op and the decision order —
// stateless, duplicate, capacity, signature — is the historical one.
func (p *Pool) Add(tx *types.Transaction) error {
	if err := tx.ValidateStateless(p.chainID); err != nil {
		return fmt.Errorf("admit tx: %w", err)
	}
	id := tx.ID()
	p.mu.Lock()
	if _, dup := p.pending[id]; dup {
		p.mu.Unlock()
		return ErrDuplicate
	}
	if len(p.queue) >= p.limit {
		p.mu.Unlock()
		return ErrPoolFull
	}
	p.mu.Unlock()
	sender, err := tx.Sender()
	if err != nil {
		return fmt.Errorf("admit tx: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.pending[id]; dup {
		return ErrDuplicate
	}
	if len(p.queue) >= p.limit {
		return ErrPoolFull
	}
	p.pending[id] = struct{}{}
	p.queue = append(p.queue, &entry{tx: tx, sender: sender, id: id})
	return nil
}

// AddBatch admits txs in input order and returns one error slot per
// transaction. All senders are recovered first via types.RecoverSenders, so
// the ECDSA work fans out across the crypto worker pool while admission
// itself — ordering, duplicate, and capacity decisions — stays strictly
// serial and therefore identical to calling Add in a loop.
func (p *Pool) AddBatch(txs []*types.Transaction) []error {
	_, _ = types.RecoverSenders(txs) // warm memo + cache; failures re-surface in Add
	errs := make([]error, len(txs))
	for i, tx := range txs {
		errs[i] = p.Add(tx)
	}
	return errs
}

// Contains reports whether the transaction is pending.
func (p *Pool) Contains(id hashing.Hash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.pending[id]
	return ok
}

// SenderGroup is one sender's selected transactions: a nonce-ordered chain
// that must execute in sequence. Pos holds each transaction's position in
// the flat FIFO batch, so flattening the groups reproduces the historical
// NextBatch order bit-exactly.
type SenderGroup struct {
	Sender hashing.Address
	Txs    []*types.Transaction
	Pos    []int
}

// NextBatchGrouped selects up to max transactions exactly like NextBatch —
// FIFO order across senders, per-sender nonce sequencing against the
// provided committed account nonces, stale-entry eviction — but returns
// them as per-sender nonce-ordered chains (groups appear in order of their
// first selected transaction), exposing the sender/nonce dependency graph
// the conflict scheduler consumes instead of re-deriving it from a flat
// slice.
//
// Selection does not consume: the batch stays pending until Remove (called
// by the chain when a block commits). A consensus round that fails after
// proposing must not destroy its transactions — under message loss that
// would silently drop client traffic every failed round. Stale entries
// (nonce below the account's *committed* nonce) are evicted here: typically
// idempotent resubmissions of a transaction that already landed, which must
// never re-execute and overwrite a success receipt with a nonce failure.
// Eviction deliberately ignores the speculative next-nonce advanced for
// batch-mates selected in this same pass: those selections are not
// committed yet, and evicting against them would destroy a competing
// same-nonce transaction that must survive if the proposed block fails.
func (p *Pool) NextBatchGrouped(max int, nonceOf func(hashing.Address) uint64) []SenderGroup {
	if max <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sel, ngroups := p.selectBatch(max, nonceOf)
	if len(sel) == 0 {
		return nil
	}
	// Materialize: one header slice plus two flat backing arrays carved
	// into per-group subslices (full-slice expressions pin the capacities,
	// so the in-capacity appends below can never cross groups).
	cnt := p.cntScratch[:0]
	for gi := 0; gi < ngroups; gi++ {
		cnt = append(cnt, 0)
	}
	p.cntScratch = cnt
	for _, r := range sel {
		cnt[r.gi]++
	}
	groups := make([]SenderGroup, ngroups)
	txFlat := make([]*types.Transaction, 0, len(sel))
	posFlat := make([]int, 0, len(sel))
	off := 0
	for gi := 0; gi < ngroups; gi++ {
		groups[gi].Txs = txFlat[off : off : off+cnt[gi]]
		groups[gi].Pos = posFlat[off : off : off+cnt[gi]]
		off += cnt[gi]
	}
	for i, r := range sel {
		g := &groups[r.gi]
		if len(g.Txs) == 0 {
			g.Sender = r.e.sender
		}
		g.Txs = append(g.Txs, r.e.tx)
		g.Pos = append(g.Pos, i)
	}
	return groups
}

// NextBatch selects up to max transactions in FIFO order, respecting
// per-sender nonce sequencing against the provided current account nonces:
// a transaction whose nonce is not the sender's next is skipped (left in
// the pool) so it can run in a later block. It materializes the same
// single selection pass as NextBatchGrouped in flat form — selection order
// *is* the historical FIFO batch order (the regression test pins them
// bit-exact against the pre-grouping algorithm).
func (p *Pool) NextBatch(max int, nonceOf func(hashing.Address) uint64) []*types.Transaction {
	if max <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sel, _ := p.selectBatch(max, nonceOf)
	batch := make([]*types.Transaction, len(sel))
	for i, r := range sel {
		batch[i] = r.e.tx
	}
	return batch
}

// selectBatch is the shared selection/eviction pass behind NextBatch and
// NextBatchGrouped: FIFO over the queue, per-sender nonce chaining, stale
// eviction. It returns the selections in flat FIFO order (each tagged with
// its sender-group index, groups numbered in order of first selection) and
// the number of groups. The returned slice aliases pool-owned scratch and
// is only valid until the next call. Callers must hold p.mu.
func (p *Pool) selectBatch(max int, nonceOf func(hashing.Address) uint64) ([]selRec, int) {
	clear(p.giOf)
	clear(p.nonceMemo)
	sel := p.selScratch[:0]
	lastNonce := p.lastNonce[:0]
	keep := p.queue[:0]
	for _, e := range p.queue {
		base, seen := p.nonceMemo[e.sender]
		if !seen {
			base = nonceOf(e.sender)
			p.nonceMemo[e.sender] = base
		}
		if e.tx.Nonce < base {
			delete(p.pending, e.id)
			continue
		}
		keep = append(keep, e)
		if len(sel) >= max {
			continue
		}
		gi, selecting := p.giOf[e.sender]
		want := base
		if selecting {
			want = lastNonce[gi] + 1
		}
		if e.tx.Nonce != want {
			continue
		}
		if !selecting {
			gi = len(lastNonce)
			lastNonce = append(lastNonce, 0)
			p.giOf[e.sender] = gi
		}
		lastNonce[gi] = e.tx.Nonce
		sel = append(sel, selRec{e: e, gi: gi})
	}
	p.queue = keep
	p.selScratch = sel
	p.lastNonce = lastNonce
	return sel, len(lastNonce)
}

// Remove drops a transaction (e.g. once included in a block received from a
// peer proposer).
func (p *Pool) Remove(id hashing.Hash) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pending[id]; !ok {
		return
	}
	delete(p.pending, id)
	for i, e := range p.queue {
		if e.id == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
}
