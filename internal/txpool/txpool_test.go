package txpool

import (
	"errors"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/types"
)

func signedTx(t *testing.T, kp *keys.KeyPair, nonce uint64) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     types.TxCall,
		To:       hashing.AddressFromBytes([]byte{0x01}),
		GasLimit: 21000,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

// signedTxTo is signedTx with a distinct destination, for building two
// different transactions that share a sender and nonce.
func signedTxTo(t *testing.T, kp *keys.KeyPair, nonce uint64, to byte) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     types.TxCall,
		To:       hashing.AddressFromBytes([]byte{to}),
		GasLimit: 21000,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func zeroNonce(hashing.Address) uint64 { return 0 }

func TestAddAndBatchFIFO(t *testing.T) {
	p := New(1, 100)
	k1, k2 := keys.Deterministic(1), keys.Deterministic(2)
	tx1 := signedTx(t, k1, 0)
	tx2 := signedTx(t, k2, 0)
	for _, tx := range []*types.Transaction{tx1, tx2} {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 2 || batch[0].ID() != tx1.ID() || batch[1].ID() != tx2.ID() {
		t.Fatal("batch must preserve FIFO order")
	}
	// Selection must not consume: the txs stay pending (and deduplicated)
	// until the block that includes them commits, so a failed consensus
	// round cannot lose them.
	if p.Len() != 2 {
		t.Fatalf("pool must keep proposed txs, len = %d", p.Len())
	}
	if err := p.Add(tx1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("proposed tx must stay deduplicated, got %v", err)
	}
	for _, tx := range batch {
		p.Remove(tx.ID())
	}
	if p.Len() != 0 {
		t.Fatal("commit-time removal must drain the pool")
	}
}

func TestDuplicateRejected(t *testing.T) {
	p := New(1, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestWrongChainRejected(t *testing.T) {
	p := New(2, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); !errors.Is(err, types.ErrTxChainID) {
		t.Fatalf("want ErrTxChainID, got %v", err)
	}
}

func TestPoolLimit(t *testing.T) {
	p := New(1, 1)
	if err := p.Add(signedTx(t, keys.Deterministic(1), 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(signedTx(t, keys.Deterministic(2), 0)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
}

func TestNonceSequencing(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	// Enqueue out of order: nonce 1 then nonce 0.
	tx1 := signedTx(t, kp, 1)
	tx0 := signedTx(t, kp, 0)
	if err := p.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx0); err != nil {
		t.Fatal(err)
	}
	batch := p.NextBatch(10, zeroNonce)
	// tx1 is skipped on the first scan (nonce gap at scan time) because it
	// precedes tx0 in FIFO order; tx0 runs now, tx1 next block.
	if len(batch) != 1 || batch[0].Nonce != 0 {
		t.Fatalf("batch = %v", batch)
	}
	p.Remove(batch[0].ID()) // block with tx0 commits
	batch = p.NextBatch(10, func(hashing.Address) uint64 { return 1 })
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("second batch = %v", batch)
	}
	p.Remove(batch[0].ID())
	if p.Len() != 0 {
		t.Fatal("pool must drain once both blocks commit")
	}
}

func TestBatchRespectsMax(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	for n := uint64(0); n < 5; n++ {
		if err := p.Add(signedTx(t, kp, n)); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(3, zeroNonce)
	if len(batch) != 3 {
		t.Fatalf("batch = %d", len(batch))
	}
	if p.Len() != 5 {
		t.Fatalf("pool must keep everything until commit, len = %d", p.Len())
	}
	for _, tx := range batch {
		p.Remove(tx.ID())
	}
	if p.Len() != 2 {
		t.Fatalf("left = %d", p.Len())
	}
}

func TestRemove(t *testing.T) {
	p := New(1, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	p.Remove(tx.ID())
	if p.Len() != 0 || p.Contains(tx.ID()) {
		t.Fatal("remove must drop the tx")
	}
	p.Remove(tx.ID()) // idempotent
}

// TestSameNonceCompetitorSurvivesFailedRound pins the select-don't-consume
// promise for competing same-nonce transactions: selecting one of them for a
// proposal must not evict the other as "stale" against the *speculative*
// nonce advanced during that same pass. If the proposed block then fails
// (message loss), the competitor must still be in the pool and proposable.
func TestSameNonceCompetitorSurvivesFailedRound(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	a := signedTxTo(t, kp, 0, 0x01)
	b := signedTxTo(t, kp, 0, 0x02) // same sender, same nonce, different tx
	for _, tx := range []*types.Transaction{a, b} {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 1 || batch[0].ID() != a.ID() {
		t.Fatalf("first proposal must select exactly the FIFO-first competitor, got %d", len(batch))
	}
	// The consensus round fails: no block commits, nothing is removed. The
	// losing competitor must not have been destroyed.
	if !p.Contains(b.ID()) || p.Len() != 2 {
		t.Fatalf("competing same-nonce tx was evicted on a failed round (len=%d, contains=%v)",
			p.Len(), p.Contains(b.ID()))
	}
	// The next round can still propose either: drop a (say, a peer saw it
	// fail admission elsewhere) and b must be selectable at the same nonce.
	p.Remove(a.ID())
	batch = p.NextBatch(10, zeroNonce)
	if len(batch) != 1 || batch[0].ID() != b.ID() {
		t.Fatal("surviving competitor must be proposable after the failed round")
	}
	// Once the account's committed nonce really advances, both are stale and
	// eviction (against committed state) kicks in.
	p.Remove(b.ID())
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if got := p.NextBatch(10, func(hashing.Address) uint64 { return 1 }); len(got) != 0 {
		t.Fatalf("stale tx below committed nonce must not be proposed, got %d", len(got))
	}
	if p.Len() != 0 {
		t.Fatalf("stale tx below committed nonce must be evicted, len = %d", p.Len())
	}
}

// TestDuplicateBeatsPoolFull pins Add's check order: an idempotent
// resubmission of an already-pending transaction reports ErrDuplicate even
// when the pool is at capacity (it consumes no slot), while a genuinely new
// transaction at capacity reports ErrPoolFull.
func TestDuplicateBeatsPoolFull(t *testing.T) {
	p := New(1, 1)
	pending := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(pending); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(pending); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmission at full pool: want ErrDuplicate, got %v", err)
	}
	if err := p.Add(signedTx(t, keys.Deterministic(2), 0)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("new tx at full pool: want ErrPoolFull, got %v", err)
	}
	// And with free capacity the duplicate is still a duplicate.
	p2 := New(1, 2)
	if err := p2.Add(pending); err != nil {
		t.Fatal(err)
	}
	if err := p2.Add(pending); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmission below capacity: want ErrDuplicate, got %v", err)
	}
}

func TestSequentialNoncesInOneBatch(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	for n := uint64(0); n < 3; n++ {
		if err := p.Add(signedTx(t, kp, n)); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 3 {
		t.Fatalf("batch = %d, want full nonce run", len(batch))
	}
	for i, tx := range batch {
		if tx.Nonce != uint64(i) {
			t.Fatalf("batch order broken at %d", i)
		}
	}
}

// legacyNextBatch is the pre-grouping NextBatch selection loop, kept
// verbatim as the reference for the bit-exactness regression below. It
// must never be called on a pool the test still needs: it evicts stale
// entries just like the real implementation.
func legacyNextBatch(p *Pool, max int, nonceOf func(hashing.Address) uint64) []*types.Transaction {
	if max <= 0 {
		return nil
	}
	batch := make([]*types.Transaction, 0, max)
	committed := make(map[hashing.Address]uint64)
	next := make(map[hashing.Address]uint64)
	keep := p.queue[:0]
	for _, e := range p.queue {
		base, seen := committed[e.sender]
		if !seen {
			base = nonceOf(e.sender)
			committed[e.sender] = base
		}
		if e.tx.Nonce < base {
			delete(p.pending, e.id)
			continue
		}
		keep = append(keep, e)
		want, selecting := next[e.sender]
		if !selecting {
			want = base
		}
		if len(batch) >= max || e.tx.Nonce != want {
			continue
		}
		batch = append(batch, e.tx)
		next[e.sender] = want + 1
	}
	p.queue = keep
	return batch
}

// TestNextBatchGroupedPreservesFIFO builds two identical pools — stale
// entries, nonce gaps, competing same-nonce transactions, interleaved
// senders, a max cutoff mid-stream — and checks that flattening the
// grouped selection reproduces the legacy flat FIFO batch bit-exactly
// (same transactions, same order, same surviving queue), and that each
// group is one sender's gapless nonce chain.
func TestNextBatchGroupedPreservesFIFO(t *testing.T) {
	kps := []*keys.KeyPair{keys.Deterministic(1), keys.Deterministic(2), keys.Deterministic(3)}
	nonceOf := func(a hashing.Address) uint64 {
		if a == kps[2].Address() {
			return 2 // sender 3's nonces 0 and 1 are stale
		}
		return 0
	}
	build := func() *Pool {
		p := New(1, 100)
		admit := func(tx *types.Transaction) {
			if err := p.Add(tx); err != nil {
				t.Fatal(err)
			}
		}
		// Interleaved: stale entries, a nonce gap for sender 2 (nonce 2
		// before nonce 1), and a competing same-nonce pair for sender 1.
		admit(signedTx(t, kps[2], 0)) // stale, evicted
		admit(signedTx(t, kps[0], 0))
		admit(signedTx(t, kps[1], 0))
		admit(signedTx(t, kps[2], 2))
		admit(signedTx(t, kps[0], 1))
		admit(signedTx(t, kps[2], 1)) // stale, evicted
		admit(signedTx(t, kps[1], 2)) // gap: skipped this round
		admit(signedTxTo(t, kps[0], 2, 0x07))
		admit(signedTxTo(t, kps[0], 2, 0x08)) // competitor, first-come wins
		admit(signedTx(t, kps[1], 1))
		admit(signedTx(t, kps[2], 3))
		admit(signedTx(t, kps[0], 3)) // over the max cutoff below
		return p
	}

	for _, max := range []int{7, 100, 3, 0} {
		ref := build()
		want := legacyNextBatch(ref, max, nonceOf)

		p := build()
		groups := p.NextBatchGrouped(max, nonceOf)
		n := 0
		for _, g := range groups {
			n += len(g.Txs)
		}
		flat := make([]*types.Transaction, n)
		for _, g := range groups {
			if len(g.Txs) != len(g.Pos) {
				t.Fatalf("max=%d: group %s has %d txs but %d positions", max, g.Sender, len(g.Txs), len(g.Pos))
			}
			for j, tx := range g.Txs {
				sender, err := tx.Sender()
				if err != nil || sender != g.Sender {
					t.Fatalf("max=%d: tx in group %s has sender %s", max, g.Sender, sender)
				}
				if j > 0 && tx.Nonce != g.Txs[j-1].Nonce+1 {
					t.Fatalf("max=%d: group %s nonces not gapless: %d after %d", max, g.Sender, tx.Nonce, g.Txs[j-1].Nonce)
				}
				flat[g.Pos[j]] = tx
			}
		}
		if len(flat) != len(want) {
			t.Fatalf("max=%d: flattened %d txs, legacy %d", max, len(flat), len(want))
		}
		for i := range want {
			if flat[i] == nil || flat[i].ID() != want[i].ID() {
				t.Fatalf("max=%d: position %d diverges from legacy order", max, i)
			}
		}
		// The wrapper itself must match too, and both pools must keep the
		// same surviving queue (evictions identical).
		p2 := build()
		got := p2.NextBatch(max, nonceOf)
		if len(got) != len(want) {
			t.Fatalf("max=%d: NextBatch %d txs, legacy %d", max, len(got), len(want))
		}
		for i := range want {
			if got[i].ID() != want[i].ID() {
				t.Fatalf("max=%d: NextBatch position %d diverges", max, i)
			}
		}
		if p2.Len() != ref.Len() {
			t.Fatalf("max=%d: surviving queue %d vs legacy %d", max, p2.Len(), ref.Len())
		}
	}
}
