package txpool

import (
	"errors"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/types"
)

func signedTx(t *testing.T, kp *keys.KeyPair, nonce uint64) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     types.TxCall,
		To:       hashing.AddressFromBytes([]byte{0x01}),
		GasLimit: 21000,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

// signedTxTo is signedTx with a distinct destination, for building two
// different transactions that share a sender and nonce.
func signedTxTo(t *testing.T, kp *keys.KeyPair, nonce uint64, to byte) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     types.TxCall,
		To:       hashing.AddressFromBytes([]byte{to}),
		GasLimit: 21000,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func zeroNonce(hashing.Address) uint64 { return 0 }

func TestAddAndBatchFIFO(t *testing.T) {
	p := New(1, 100)
	k1, k2 := keys.Deterministic(1), keys.Deterministic(2)
	tx1 := signedTx(t, k1, 0)
	tx2 := signedTx(t, k2, 0)
	for _, tx := range []*types.Transaction{tx1, tx2} {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 2 || batch[0].ID() != tx1.ID() || batch[1].ID() != tx2.ID() {
		t.Fatal("batch must preserve FIFO order")
	}
	// Selection must not consume: the txs stay pending (and deduplicated)
	// until the block that includes them commits, so a failed consensus
	// round cannot lose them.
	if p.Len() != 2 {
		t.Fatalf("pool must keep proposed txs, len = %d", p.Len())
	}
	if err := p.Add(tx1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("proposed tx must stay deduplicated, got %v", err)
	}
	for _, tx := range batch {
		p.Remove(tx.ID())
	}
	if p.Len() != 0 {
		t.Fatal("commit-time removal must drain the pool")
	}
}

func TestDuplicateRejected(t *testing.T) {
	p := New(1, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestWrongChainRejected(t *testing.T) {
	p := New(2, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); !errors.Is(err, types.ErrTxChainID) {
		t.Fatalf("want ErrTxChainID, got %v", err)
	}
}

func TestPoolLimit(t *testing.T) {
	p := New(1, 1)
	if err := p.Add(signedTx(t, keys.Deterministic(1), 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(signedTx(t, keys.Deterministic(2), 0)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
}

func TestNonceSequencing(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	// Enqueue out of order: nonce 1 then nonce 0.
	tx1 := signedTx(t, kp, 1)
	tx0 := signedTx(t, kp, 0)
	if err := p.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx0); err != nil {
		t.Fatal(err)
	}
	batch := p.NextBatch(10, zeroNonce)
	// tx1 is skipped on the first scan (nonce gap at scan time) because it
	// precedes tx0 in FIFO order; tx0 runs now, tx1 next block.
	if len(batch) != 1 || batch[0].Nonce != 0 {
		t.Fatalf("batch = %v", batch)
	}
	p.Remove(batch[0].ID()) // block with tx0 commits
	batch = p.NextBatch(10, func(hashing.Address) uint64 { return 1 })
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("second batch = %v", batch)
	}
	p.Remove(batch[0].ID())
	if p.Len() != 0 {
		t.Fatal("pool must drain once both blocks commit")
	}
}

func TestBatchRespectsMax(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	for n := uint64(0); n < 5; n++ {
		if err := p.Add(signedTx(t, kp, n)); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(3, zeroNonce)
	if len(batch) != 3 {
		t.Fatalf("batch = %d", len(batch))
	}
	if p.Len() != 5 {
		t.Fatalf("pool must keep everything until commit, len = %d", p.Len())
	}
	for _, tx := range batch {
		p.Remove(tx.ID())
	}
	if p.Len() != 2 {
		t.Fatalf("left = %d", p.Len())
	}
}

func TestRemove(t *testing.T) {
	p := New(1, 100)
	tx := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	p.Remove(tx.ID())
	if p.Len() != 0 || p.Contains(tx.ID()) {
		t.Fatal("remove must drop the tx")
	}
	p.Remove(tx.ID()) // idempotent
}

// TestSameNonceCompetitorSurvivesFailedRound pins the select-don't-consume
// promise for competing same-nonce transactions: selecting one of them for a
// proposal must not evict the other as "stale" against the *speculative*
// nonce advanced during that same pass. If the proposed block then fails
// (message loss), the competitor must still be in the pool and proposable.
func TestSameNonceCompetitorSurvivesFailedRound(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	a := signedTxTo(t, kp, 0, 0x01)
	b := signedTxTo(t, kp, 0, 0x02) // same sender, same nonce, different tx
	for _, tx := range []*types.Transaction{a, b} {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 1 || batch[0].ID() != a.ID() {
		t.Fatalf("first proposal must select exactly the FIFO-first competitor, got %d", len(batch))
	}
	// The consensus round fails: no block commits, nothing is removed. The
	// losing competitor must not have been destroyed.
	if !p.Contains(b.ID()) || p.Len() != 2 {
		t.Fatalf("competing same-nonce tx was evicted on a failed round (len=%d, contains=%v)",
			p.Len(), p.Contains(b.ID()))
	}
	// The next round can still propose either: drop a (say, a peer saw it
	// fail admission elsewhere) and b must be selectable at the same nonce.
	p.Remove(a.ID())
	batch = p.NextBatch(10, zeroNonce)
	if len(batch) != 1 || batch[0].ID() != b.ID() {
		t.Fatal("surviving competitor must be proposable after the failed round")
	}
	// Once the account's committed nonce really advances, both are stale and
	// eviction (against committed state) kicks in.
	p.Remove(b.ID())
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if got := p.NextBatch(10, func(hashing.Address) uint64 { return 1 }); len(got) != 0 {
		t.Fatalf("stale tx below committed nonce must not be proposed, got %d", len(got))
	}
	if p.Len() != 0 {
		t.Fatalf("stale tx below committed nonce must be evicted, len = %d", p.Len())
	}
}

// TestDuplicateBeatsPoolFull pins Add's check order: an idempotent
// resubmission of an already-pending transaction reports ErrDuplicate even
// when the pool is at capacity (it consumes no slot), while a genuinely new
// transaction at capacity reports ErrPoolFull.
func TestDuplicateBeatsPoolFull(t *testing.T) {
	p := New(1, 1)
	pending := signedTx(t, keys.Deterministic(1), 0)
	if err := p.Add(pending); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(pending); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmission at full pool: want ErrDuplicate, got %v", err)
	}
	if err := p.Add(signedTx(t, keys.Deterministic(2), 0)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("new tx at full pool: want ErrPoolFull, got %v", err)
	}
	// And with free capacity the duplicate is still a duplicate.
	p2 := New(1, 2)
	if err := p2.Add(pending); err != nil {
		t.Fatal(err)
	}
	if err := p2.Add(pending); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmission below capacity: want ErrDuplicate, got %v", err)
	}
}

func TestSequentialNoncesInOneBatch(t *testing.T) {
	p := New(1, 100)
	kp := keys.Deterministic(1)
	for n := uint64(0); n < 3; n++ {
		if err := p.Add(signedTx(t, kp, n)); err != nil {
			t.Fatal(err)
		}
	}
	batch := p.NextBatch(10, zeroNonce)
	if len(batch) != 3 {
		t.Fatalf("batch = %d, want full nonce run", len(batch))
	}
	for i, tx := range batch {
		if tx.Nonce != uint64(i) {
			t.Fatalf("batch order broken at %d", i)
		}
	}
}
