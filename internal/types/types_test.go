package types

import (
	"bytes"
	"errors"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/u256"
)

func mkTx(t *testing.T, kp *keys.KeyPair) *Transaction {
	t.Helper()
	tx := &Transaction{
		ChainID:  1,
		Nonce:    3,
		Kind:     TxCall,
		To:       hashing.AddressFromBytes([]byte{0xaa}),
		Value:    u256.FromUint64(10),
		GasLimit: 100000,
		GasPrice: u256.FromUint64(2),
		Data:     []byte("input"),
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTxSignAndSender(t *testing.T) {
	kp := keys.Deterministic(1)
	tx := mkTx(t, kp)
	sender, err := tx.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if sender != kp.Address() {
		t.Fatalf("sender = %s, want %s", sender, kp.Address())
	}
}

func TestTxIDExcludesSignature(t *testing.T) {
	kp := keys.Deterministic(1)
	tx := mkTx(t, kp)
	id1 := tx.ID()
	if err := tx.Sign(kp); err != nil { // re-sign: new randomness
		t.Fatal(err)
	}
	if tx.ID() != id1 {
		t.Fatal("tx id must not depend on the signature")
	}
}

func TestTxTamperDetected(t *testing.T) {
	kp := keys.Deterministic(1)
	tx := mkTx(t, kp)
	tx.Value = u256.FromUint64(999)
	if _, err := tx.Sender(); !errors.Is(err, ErrBadTxSignature) {
		t.Fatalf("want ErrBadTxSignature, got %v", err)
	}
}

func TestTxValidateChainBinding(t *testing.T) {
	kp := keys.Deterministic(1)
	tx := mkTx(t, kp)
	if err := tx.Validate(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Validate(2); !errors.Is(err, ErrTxChainID) {
		t.Fatalf("want ErrTxChainID, got %v", err)
	}
}

func TestMove2RequiresPayload(t *testing.T) {
	kp := keys.Deterministic(1)
	tx := &Transaction{ChainID: 1, Kind: TxMove2, GasLimit: 1}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if err := tx.Validate(1); !errors.Is(err, ErrMissingPayload) {
		t.Fatalf("want ErrMissingPayload, got %v", err)
	}
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	kp := keys.Deterministic(2)
	tx := mkTx(t, kp)
	tx.Kind = TxMove2
	tx.Move2 = &Move2Payload{
		Contract:     hashing.AddressFromBytes([]byte{0xbb}),
		SourceChain:  9,
		SourceHeight: 42,
		AccountProof: []byte{1, 2, 3},
		Code:         []byte("code"),
		Storage: []StorageEntry{
			{Key: evm.Word{1}, Value: evm.Word{2}},
			{Key: evm.Word{3}, Value: evm.Word{4}},
		},
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != tx.ID() {
		t.Fatal("round trip must preserve the id")
	}
	if got.Move2 == nil || got.Move2.SourceHeight != 42 || len(got.Move2.Storage) != 2 {
		t.Fatalf("payload lost: %+v", got.Move2)
	}
	if !bytes.Equal(got.Move2.Code, []byte("code")) {
		t.Fatal("code lost")
	}
	if _, err := got.Sender(); err != nil {
		t.Fatalf("decoded signature must verify: %v", err)
	}
}

func TestDecodeTransactionRejectsGarbage(t *testing.T) {
	if _, err := DecodeTransaction([]byte{0xff, 0x01}); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestHeaderRoundTripAndHash(t *testing.T) {
	h := &Header{
		ChainID:    2,
		Height:     7,
		ParentHash: hashing.Sum([]byte("parent")),
		StateRoot:  hashing.Sum([]byte("state")),
		TxRoot:     hashing.Sum([]byte("txs")),
		Time:       1234,
		Proposer:   hashing.AddressFromBytes([]byte{0x01}),
		GasUsed:    5,
		GasLimit:   10,
		Difficulty: u256.FromUint64(1000),
		Nonce:      77,
	}
	got, err := DecodeHeader(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	if got.Hash() != h.Hash() {
		t.Fatal("hashes must match")
	}
	got.Height++
	if got.Hash() == h.Hash() {
		t.Fatal("distinct headers must hash differently")
	}
}

func TestTxRootSensitiveToOrderAndContent(t *testing.T) {
	kp := keys.Deterministic(3)
	tx1 := mkTx(t, kp)
	tx2 := mkTx(t, kp)
	tx2.Nonce = 4
	if err := tx2.Sign(kp); err != nil {
		t.Fatal(err)
	}
	r12 := TxRoot([]*Transaction{tx1, tx2})
	r21 := TxRoot([]*Transaction{tx2, tx1})
	if r12 == r21 {
		t.Fatal("tx root must be order-sensitive")
	}
	if TxRoot(nil) == r12 {
		t.Fatal("empty root must differ")
	}
	if TxRoot(nil) != TxRoot([]*Transaction{}) {
		t.Fatal("nil and empty lists must agree")
	}
}

func TestReceiptSucceeded(t *testing.T) {
	r := Receipt{Status: ReceiptSuccess}
	if !r.Succeeded() {
		t.Fatal("success receipt")
	}
	r.Status = ReceiptFailed
	if r.Succeeded() {
		t.Fatal("failed receipt")
	}
}

// TestIDMatchesUnsignedEncoding pins hashUnsigned to encodeUnsigned: ID is
// computed from a streaming hasher for speed, and the two encodings must
// never drift apart or every stored transaction id would change.
func TestIDMatchesUnsignedEncoding(t *testing.T) {
	txs := []*Transaction{
		{},
		{
			ChainID:  7,
			Nonce:    42,
			Kind:     TxCreate,
			From:     hashing.AddressFromBytes([]byte{0x01, 0x02}),
			To:       hashing.AddressFromBytes([]byte{0xbe, 0xef}),
			Value:    u256.FromUint64(12345),
			GasLimit: 1 << 30,
			GasPrice: u256.FromUint64(99),
			Data:     bytes.Repeat([]byte{0xab}, 300),
		},
		{
			ChainID: 2,
			Kind:    TxMove2,
			Move2: &Move2Payload{
				Contract:     hashing.AddressFromBytes([]byte{0x11}),
				SourceChain:  9,
				SourceHeight: 1 << 40,
				AccountProof: []byte("proof-bytes"),
				Code:         []byte("code-bytes"),
				Storage: []StorageEntry{
					{Key: evm.Word{1}, Value: evm.Word{2}},
					{Key: evm.Word{3}, Value: evm.Word{4}},
				},
			},
		},
	}
	for i, tx := range txs {
		if got, want := tx.ID(), hashing.Sum(tx.encodeUnsigned()); got != want {
			t.Errorf("tx %d: ID() = %s, want Sum(encodeUnsigned()) = %s", i, got, want)
		}
	}
}
