//go:build race

package types

// raceEnabled reports whether the race detector is active. AllocsPerRun
// assertions are skipped under -race: sync.Pool randomly drops Puts there
// (to widen the interleavings it can observe), so pooled-object reuse — and
// with it the zero-allocation guarantee — is nondeterministic by design.
const raceEnabled = true
