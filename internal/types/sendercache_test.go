package types

import (
	"runtime"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/u256"
)

func signedTx(t testing.TB, kp *keys.KeyPair, nonce uint64) *Transaction {
	t.Helper()
	tx := &Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     TxCall,
		To:       hashing.AddressFromBytes([]byte{0x07}),
		Value:    u256.FromUint64(nonce + 1),
		GasLimit: 21_000,
		GasPrice: u256.FromUint64(2),
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

// resetSenderCache gives each test an empty cache at a known capacity.
func resetSenderCache(t testing.TB, capacity int) {
	t.Helper()
	SetSenderCacheCapacity(capacity)
	t.Cleanup(func() { SetSenderCacheCapacity(0) })
}

func TestSenderCacheHitAcrossCopies(t *testing.T) {
	resetSenderCache(t, 64)
	kp := keys.Deterministic(1)
	tx := signedTx(t, kp, 0)

	// A decoded copy has no verifiedID memo; the cache (seeded by Sign)
	// must recover the sender without a fresh verification.
	copyTx, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	before := ReadSenderCacheStats()
	addr, err := copyTx.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if addr != kp.Address() {
		t.Fatalf("sender %s, want %s", addr, kp.Address())
	}
	after := ReadSenderCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected one cache hit, stats before %+v after %+v", before, after)
	}
}

func TestSenderCacheReplayedSignatureOnDifferentPayload(t *testing.T) {
	resetSenderCache(t, 64)
	kp := keys.Deterministic(1)
	tx := signedTx(t, kp, 0)

	// Graft the genuine signature onto different content. The id changes,
	// so the cache must miss, and full verification must reject it.
	forged, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	forged.Value = u256.FromUint64(1 << 40)
	before := ReadSenderCacheStats()
	if _, err := forged.Sender(); err == nil {
		t.Fatal("replayed signature on altered payload must fail verification")
	}
	after := ReadSenderCacheStats()
	if after.Hits != before.Hits {
		t.Fatalf("forged payload must not hit the cache: before %+v after %+v", before, after)
	}

	// Same id with different signature bytes must also miss: re-signing by
	// another key yields sig bytes whose digest cannot match the entry.
	other := keys.Deterministic(2)
	mismatch, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := other.Sign(mismatch.ID())
	if err != nil {
		t.Fatal(err)
	}
	mismatch.Sig = sig
	if _, err := mismatch.Sender(); err == nil {
		t.Fatal("signature by another key must fail the From check")
	}
}

func TestSenderCacheEvictionAtCapacity(t *testing.T) {
	const capacity = 8
	resetSenderCache(t, capacity)
	kp := keys.Deterministic(1)
	txs := make([]*Transaction, capacity+4)
	for i := range txs {
		txs[i] = signedTx(t, kp, uint64(i)) // Sign stores each entry
	}
	stats := ReadSenderCacheStats()
	if stats.Evictions != uint64(len(txs)-capacity) {
		t.Fatalf("evictions = %d, want %d", stats.Evictions, len(txs)-capacity)
	}
	if got := len(senderCache.entries); got != capacity {
		t.Fatalf("cache holds %d entries, cap is %d", got, capacity)
	}
	// The oldest entries are gone: a fresh copy of tx 0 must miss ...
	old, err := DecodeTransaction(txs[0].Encode())
	if err != nil {
		t.Fatal(err)
	}
	before := ReadSenderCacheStats()
	if _, err := old.Sender(); err != nil {
		t.Fatal(err) // slow path still verifies fine
	}
	mid := ReadSenderCacheStats()
	if mid.Misses != before.Misses+1 {
		t.Fatalf("evicted entry must miss: before %+v after %+v", before, mid)
	}
	// ... while the newest still hits.
	fresh, err := DecodeTransaction(txs[len(txs)-1].Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Sender(); err != nil {
		t.Fatal(err)
	}
	after := ReadSenderCacheStats()
	if after.Hits != mid.Hits+1 {
		t.Fatalf("recent entry must hit: before %+v after %+v", mid, after)
	}
}

func TestSenderCacheHitPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("hasher pool reuse is nondeterministic under -race (sync.Pool drops Puts)")
	}
	resetSenderCache(t, 64)
	kp := keys.Deterministic(1)
	tx := signedTx(t, kp, 0)
	copyTx, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := copyTx.Sender(); err != nil {
		t.Fatal(err)
	}
	// Strip the memo each round so every iteration takes the shared-cache
	// path, not the per-object fast path.
	if avg := testing.AllocsPerRun(200, func() {
		copyTx.verifiedID = hashing.Hash{}
		if _, err := copyTx.Sender(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("cache-hit Sender allocates %.1f per call, want 0", avg)
	}
}

// TestSenderCacheStoreSteadyStateZeroAllocs pins the intrusive-LRU recycling
// paths: storing new entries into a cache at capacity reuses the evicted
// tail, and refilling after a reset reuses the entries the reset chained
// onto the free list. Neither path may allocate.
func TestSenderCacheStoreSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("hasher pool reuse is nondeterministic under -race (sync.Pool drops Puts)")
	}
	const capacity = 32
	resetSenderCache(t, capacity)
	kp := keys.Deterministic(1)
	addr := kp.Address()
	tx := signedTx(t, kp, 0)
	sig := &tx.Sig
	// Fill to capacity; these stores allocate the entry structs once.
	var id hashing.Hash
	for i := 1; i <= capacity; i++ {
		id[0], id[1] = byte(i), byte(i>>8)
		senderCache.store(id, sig, addr)
	}
	if got := len(senderCache.entries); got != capacity {
		t.Fatalf("cache holds %d entries, want %d", got, capacity)
	}
	// At capacity every store evicts the tail and must reuse its entry.
	n := capacity
	if avg := testing.AllocsPerRun(200, func() {
		n++
		id[0], id[1] = byte(n), byte(n>>8)
		senderCache.store(id, sig, addr)
	}); avg != 0 {
		t.Fatalf("store at capacity allocates %.2f per op, want 0", avg)
	}
	// A reset recycles the discarded entries onto the free list; refilling
	// must consume them instead of allocating.
	SetSenderCacheCapacity(capacity)
	if senderCache.free == nil {
		t.Fatal("reset must chain discarded entries onto the free list")
	}
	if avg := testing.AllocsPerRun(capacity-1, func() {
		n++
		id[0], id[1] = byte(n), byte(n>>8)
		senderCache.store(id, sig, addr)
	}); avg != 0 {
		t.Fatalf("refill after reset allocates %.2f per op, want 0", avg)
	}
}

func TestRecoverSendersMatchesSerialAcrossGOMAXPROCS(t *testing.T) {
	resetSenderCache(t, 4096)
	txs := make([]*Transaction, 24)
	for i := range txs {
		txs[i] = signedTx(t, keys.Deterministic(uint64(i%5+1)), uint64(i))
	}
	// One duplicate pointer and one corrupted signature.
	txs[7] = txs[3]
	txs[11].Sig.S = []byte{9}

	want := make([]hashing.Address, len(txs))
	wantErr := make([]bool, len(txs))
	for i, tx := range txs {
		// Fresh copies strip memos so every mode does the same work.
		c := *tx
		c.verifiedID = hashing.Hash{}
		addr, err := c.Sender()
		want[i], wantErr[i] = addr, err != nil
	}

	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		SetSenderCacheCapacity(4096) // clear between rounds
		stripped := make([]*Transaction, len(txs))
		fresh := make(map[*Transaction]*Transaction)
		for i, tx := range txs {
			c, ok := fresh[tx]
			if !ok {
				cc := *tx
				cc.verifiedID = hashing.Hash{}
				c = &cc
				fresh[tx] = c
			}
			stripped[i] = c
		}
		prev := runtime.GOMAXPROCS(procs)
		addrs, errs := RecoverSenders(stripped)
		runtime.GOMAXPROCS(prev)
		for i := range txs {
			if addrs[i] != want[i] || (errs[i] != nil) != wantErr[i] {
				t.Fatalf("GOMAXPROCS=%d index %d: got (%s, %v), want (%s, err=%v)",
					procs, i, addrs[i], errs[i], want[i], wantErr[i])
			}
		}
	}
}

func TestSignOnMatchesInlineSign(t *testing.T) {
	resetSenderCache(t, 64)
	kp := keys.Deterministic(3)
	inline := signedTx(t, kp, 5)

	deferred := &Transaction{
		ChainID:  1,
		Nonce:    5,
		Kind:     TxCall,
		To:       hashing.AddressFromBytes([]byte{0x07}),
		Value:    u256.FromUint64(6),
		GasLimit: 21_000,
		GasPrice: u256.FromUint64(2),
	}
	deferred.SignOn(kp, nil)
	// The id is fixed before the signature lands: everything the simulation
	// orders on is already determined.
	if deferred.ID() != inline.ID() {
		t.Fatal("SignOn must fix the same id as Sign before the signature lands")
	}
	if err := deferred.WaitSig(); err != nil {
		t.Fatal(err)
	}
	if err := deferred.WaitSig(); err != nil {
		t.Fatal("WaitSig must be idempotent")
	}
	if addr, err := deferred.Sender(); err != nil || addr != kp.Address() {
		t.Fatalf("deferred signature invalid: %s %v", addr, err)
	}
	// A decoded copy hits the cache exactly like the inline-signed path.
	c, err := DecodeTransaction(deferred.Encode())
	if err != nil {
		t.Fatal(err)
	}
	before := ReadSenderCacheStats()
	if _, err := c.Sender(); err != nil {
		t.Fatal(err)
	}
	if after := ReadSenderCacheStats(); after.Hits != before.Hits+1 {
		t.Fatal("SignOn must seed the sender cache")
	}
}
