package types

import (
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Header is a block header. It is a few hundred bytes — the constant-size
// artifact light clients download to verify Merkle proofs of peer chains
// (paper §III-A).
type Header struct {
	ChainID    hashing.ChainID
	Height     uint64
	ParentHash hashing.Hash
	// StateRoot commits to the world state. On the Ethereum-like chain it
	// is the root *after* executing this block; on the Burrow-like chain it
	// is the root after block Height-1, reproducing Tendermint's lagging
	// app-hash rule that forces the two-block wait of §VI.
	StateRoot hashing.Hash
	TxRoot    hashing.Hash
	Time      uint64 // unix seconds, simulated clock
	Proposer  hashing.Address
	GasUsed   uint64
	GasLimit  uint64
	// Difficulty and Nonce are used by the PoW chain; zero on BFT chains.
	Difficulty u256.Int
	Nonce      uint64
}

// Encode returns the canonical header encoding.
func (h *Header) Encode() []byte {
	w := codec.NewWriter(192)
	w.WriteUvarint(uint64(h.ChainID))
	w.WriteUvarint(h.Height)
	w.WriteHash(h.ParentHash)
	w.WriteHash(h.StateRoot)
	w.WriteHash(h.TxRoot)
	w.WriteUvarint(h.Time)
	w.WriteAddress(h.Proposer)
	w.WriteUvarint(h.GasUsed)
	w.WriteUvarint(h.GasLimit)
	w.WriteWord(h.Difficulty.Bytes32())
	w.WriteUvarint(h.Nonce)
	return w.Bytes()
}

// DecodeHeader parses an encoded header.
func DecodeHeader(b []byte) (*Header, error) {
	r := codec.NewReader(b)
	var h Header
	h.ChainID = hashing.ChainID(r.ReadUvarint())
	h.Height = r.ReadUvarint()
	h.ParentHash = r.ReadHash()
	h.StateRoot = r.ReadHash()
	h.TxRoot = r.ReadHash()
	h.Time = r.ReadUvarint()
	h.Proposer = r.ReadAddress()
	h.GasUsed = r.ReadUvarint()
	h.GasLimit = r.ReadUvarint()
	d := r.ReadWord()
	h.Difficulty = u256.FromBytes(d[:])
	h.Nonce = r.ReadUvarint()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decode header: %w", err)
	}
	return &h, nil
}

// Hash returns the block hash.
func (h *Header) Hash() hashing.Hash { return hashing.Sum(h.Encode()) }

// Block is a header together with its transaction body.
type Block struct {
	Header *Header
	Txs    []*Transaction
}

// TxRoot computes the commitment over an ordered transaction list.
func TxRoot(txs []*Transaction) hashing.Hash {
	w := codec.NewWriter(32 * (len(txs) + 1))
	w.WriteUvarint(uint64(len(txs)))
	for _, tx := range txs {
		w.WriteHash(tx.ID())
	}
	return hashing.Sum(w.Bytes())
}

// ReceiptStatus reports how a transaction executed.
type ReceiptStatus uint8

const (
	// ReceiptSuccess means the transaction executed without error.
	ReceiptSuccess ReceiptStatus = iota + 1
	// ReceiptFailed means execution aborted (reverted, out of gas, or a
	// protocol rule such as a locked contract); the fee was still charged.
	ReceiptFailed
)

// Receipt records the outcome of one executed transaction.
type Receipt struct {
	TxID    hashing.Hash
	Status  ReceiptStatus
	GasUsed uint64
	Logs    []*evm.Log
	// Created is the deployed contract address for TxCreate.
	Created hashing.Address
	// Err is the human-readable failure reason (empty on success). It is
	// not part of consensus state.
	Err string
}

// Succeeded reports whether the transaction executed without error.
func (r *Receipt) Succeeded() bool { return r.Status == ReceiptSuccess }
