package types

import (
	"math/rand"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/iavl"
	"scmove/internal/keys"
	"scmove/internal/mpt"
	"scmove/internal/state"
	"scmove/internal/u256"
)

// TestDecodersSurviveRandomBytes feeds random byte strings to every decoder
// that handles untrusted input: none may panic; they must either decode or
// return an error. (Byzantine peers control these bytes.)
func TestDecodersSurviveRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	root := hashing.Sum([]byte("root"))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)

		if tx, err := DecodeTransaction(buf); err == nil && tx != nil {
			// Rarely decodable; if it decodes, it must re-encode.
			_ = tx.Encode()
		}
		if h, err := DecodeHeader(buf); err == nil && h != nil {
			_ = h.Hash()
		}
		if _, err := state.DecodeAccount(buf); err == nil {
			continue
		}
		if _, err := mpt.VerifyProof(root, buf); err == nil {
			t.Fatalf("random bytes verified as an MPT proof (len %d)", n)
		}
		if _, err := iavl.VerifyProof(root, buf); err == nil {
			t.Fatalf("random bytes verified as an IAVL proof (len %d)", n)
		}
	}
}

// TestDecodersSurviveTruncation encodes real values and replays every
// prefix through the decoders.
func TestDecodersSurviveTruncation(t *testing.T) {
	tx := &Transaction{
		ChainID: 1, Nonce: 9, Kind: TxMove2, GasLimit: 5,
		Move2: &Move2Payload{
			Contract:     hashing.AddressFromBytes([]byte{1}),
			SourceChain:  2,
			SourceHeight: 3,
			AccountProof: []byte{1, 2, 3, 4},
			Code:         []byte("code"),
			Storage:      []StorageEntry{{Key: [32]byte{1}, Value: [32]byte{2}}},
		},
	}
	enc := tx.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeTransaction(enc[:cut]); err == nil {
			t.Fatalf("truncated tx at %d decoded", cut)
		}
	}
	h := &Header{ChainID: 1, Height: 2, Time: 3}
	hEnc := h.Encode()
	for cut := 0; cut < len(hEnc); cut++ {
		if _, err := DecodeHeader(hEnc[:cut]); err == nil {
			t.Fatalf("truncated header at %d decoded", cut)
		}
	}
}

func mustKey(t *testing.T) *keys.KeyPair {
	t.Helper()
	return keys.Deterministic(77)
}

// fuzzSeedTx returns a signed transaction used to seed the decode fuzzers
// with a structurally valid encoding.
func fuzzSeedTx(tb testing.TB, kind TxKind) *Transaction {
	tb.Helper()
	tx := &Transaction{
		ChainID: 1, Nonce: 3, Kind: kind, GasLimit: 50_000, GasPrice: u256.One(),
		To:   hashing.AddressFromBytes([]byte{0x11}),
		Data: []byte("calldata"),
	}
	if kind == TxMove2 {
		tx.To = hashing.Address{}
		tx.Data = nil
		tx.Move2 = &Move2Payload{
			Contract:     hashing.AddressFromBytes([]byte{0x22}),
			SourceChain:  2,
			SourceHeight: 9,
			AccountProof: []byte{9, 8, 7},
			Code:         []byte("code"),
			Storage:      []StorageEntry{{Key: [32]byte{1}, Value: [32]byte{2}}},
		}
	}
	if err := tx.Sign(keys.Deterministic(77)); err != nil {
		tb.Fatal(err)
	}
	return tx
}

// FuzzDecodeTransaction feeds arbitrary bytes to the transaction decoder:
// it must never panic, and anything it accepts must survive a re-encode /
// re-decode round trip with identical identity.
func FuzzDecodeTransaction(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(fuzzSeedTx(f, TxCall).Encode())
	f.Add(fuzzSeedTx(f, TxMove2).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTransaction(data)
		if err != nil {
			return
		}
		// Sender recovery must also tolerate whatever decoded (it parses the
		// embedded public key and signature scalars).
		_, _ = tx.Sender()
		enc := tx.Encode()
		tx2, err := DecodeTransaction(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted transaction failed: %v", err)
		}
		if tx2.ID() != tx.ID() {
			t.Fatalf("round trip changed identity: %s != %s", tx2.ID(), tx.ID())
		}
	})
}

// FuzzDecodeHeader feeds arbitrary bytes to the block-header decoder: no
// panic, and accepted headers round-trip to an identical struct.
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte(nil))
	h := &Header{ChainID: 1, Height: 7, Time: 99,
		ParentHash: hashing.Sum([]byte("parent")), StateRoot: hashing.Sum([]byte("root"))}
	f.Add(h.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		_ = h.Hash()
		h2, err := DecodeHeader(h.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted header failed: %v", err)
		}
		if *h2 != *h {
			t.Fatalf("round trip changed header: %+v != %+v", h2, h)
		}
	})
}

// FuzzDecodeMove2Payload feeds arbitrary bytes to the standalone Move2
// payload decoder (the journal and hostile-ingest paths use it directly).
func FuzzDecodeMove2Payload(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeMove2Payload(fuzzSeedTx(f, TxMove2).Move2))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMove2Payload(data)
		if err != nil {
			return
		}
		m2, err := DecodeMove2Payload(EncodeMove2Payload(m))
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if len(m2.Storage) != len(m.Storage) || m2.Contract != m.Contract {
			t.Fatal("round trip changed payload")
		}
	})
}

// TestTransactionBitFlipsNeverForgeSignatures flips every bit of an encoded
// signed transaction: decoding may fail, but a decoded transaction must
// never pass signature verification with altered content.
func TestTransactionBitFlipsNeverForgeSignatures(t *testing.T) {
	kp := mustKey(t)
	tx := &Transaction{ChainID: 1, Nonce: 1, Kind: TxCall, GasLimit: 5, Data: []byte("payload")}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	enc := tx.Encode()
	origID := tx.ID()
	for pos := 0; pos < len(enc); pos++ {
		mutated := append([]byte{}, enc...)
		mutated[pos] ^= 0x01
		got, err := DecodeTransaction(mutated)
		if err != nil {
			continue
		}
		if _, err := got.Sender(); err == nil && got.ID() != origID {
			t.Fatalf("bit flip at %d forged a valid signature for altered content", pos)
		}
	}
}
