package types

import (
	"math/rand"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/iavl"
	"scmove/internal/keys"
	"scmove/internal/mpt"
	"scmove/internal/state"
)

// TestDecodersSurviveRandomBytes feeds random byte strings to every decoder
// that handles untrusted input: none may panic; they must either decode or
// return an error. (Byzantine peers control these bytes.)
func TestDecodersSurviveRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	root := hashing.Sum([]byte("root"))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)

		if tx, err := DecodeTransaction(buf); err == nil && tx != nil {
			// Rarely decodable; if it decodes, it must re-encode.
			_ = tx.Encode()
		}
		if h, err := DecodeHeader(buf); err == nil && h != nil {
			_ = h.Hash()
		}
		if _, err := state.DecodeAccount(buf); err == nil {
			continue
		}
		if _, err := mpt.VerifyProof(root, buf); err == nil {
			t.Fatalf("random bytes verified as an MPT proof (len %d)", n)
		}
		if _, err := iavl.VerifyProof(root, buf); err == nil {
			t.Fatalf("random bytes verified as an IAVL proof (len %d)", n)
		}
	}
}

// TestDecodersSurviveTruncation encodes real values and replays every
// prefix through the decoders.
func TestDecodersSurviveTruncation(t *testing.T) {
	tx := &Transaction{
		ChainID: 1, Nonce: 9, Kind: TxMove2, GasLimit: 5,
		Move2: &Move2Payload{
			Contract:     hashing.AddressFromBytes([]byte{1}),
			SourceChain:  2,
			SourceHeight: 3,
			AccountProof: []byte{1, 2, 3, 4},
			Code:         []byte("code"),
			Storage:      []StorageEntry{{Key: [32]byte{1}, Value: [32]byte{2}}},
		},
	}
	enc := tx.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeTransaction(enc[:cut]); err == nil {
			t.Fatalf("truncated tx at %d decoded", cut)
		}
	}
	h := &Header{ChainID: 1, Height: 2, Time: 3}
	hEnc := h.Encode()
	for cut := 0; cut < len(hEnc); cut++ {
		if _, err := DecodeHeader(hEnc[:cut]); err == nil {
			t.Fatalf("truncated header at %d decoded", cut)
		}
	}
}

func mustKey(t *testing.T) *keys.KeyPair {
	t.Helper()
	return keys.Deterministic(77)
}

// TestTransactionBitFlipsNeverForgeSignatures flips every bit of an encoded
// signed transaction: decoding may fail, but a decoded transaction must
// never pass signature verification with altered content.
func TestTransactionBitFlipsNeverForgeSignatures(t *testing.T) {
	kp := mustKey(t)
	tx := &Transaction{ChainID: 1, Nonce: 1, Kind: TxCall, GasLimit: 5, Data: []byte("payload")}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	enc := tx.Encode()
	origID := tx.ID()
	for pos := 0; pos < len(enc); pos++ {
		mutated := append([]byte{}, enc...)
		mutated[pos] ^= 0x01
		got, err := DecodeTransaction(mutated)
		if err != nil {
			continue
		}
		if _, err := got.Sender(); err == nil && got.ID() != origID {
			t.Fatalf("bit flip at %d forged a valid signature for altered content", pos)
		}
	}
}
