package types

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scmove/internal/hashing"
	"scmove/internal/keys"
)

// The sender cache memoizes signature recovery *across transaction copies*.
// The per-object verifiedID field on Transaction already short-circuits
// repeat Sender calls on the same pointer, but the system routinely re-owns
// the same signed bytes as fresh objects: BFT consensus decodes the
// proposal payload before ApplyBlock, relayers resubmit retained signed
// transactions, and block-sync replays whole tx lists. Each of those copies
// would re-run a ~50 µs P-256 verification for content that already checked
// out. The cache is content-addressed — tx ID plus a digest of the exact
// signature bytes — so it is hit only by the identical (content, signature)
// pair that previously verified; replaying a signature on different content
// changes the ID and misses, and re-signing the same content changes the
// signature digest and misses.

// senderCacheEntry is one recovered (tx ID, signature) → address mapping,
// linked into an intrusive LRU list so hits and evictions allocate nothing.
type senderCacheEntry struct {
	id         hashing.Hash
	sigSum     hashing.Hash
	addr       hashing.Address
	prev, next *senderCacheEntry
}

type senderCacheState struct {
	mu      sync.Mutex
	cap     int
	entries map[hashing.Hash]*senderCacheEntry
	// LRU list: head = most recent. At capacity, store reuses the evicted
	// tail entry directly; free holds entries recycled by a cache reset
	// (SetSenderCacheCapacity), so both a full cache and a refilling one
	// run at a zero-allocation steady state.
	head, tail *senderCacheEntry
	free       *senderCacheEntry

	hits, misses, evictions atomic.Uint64
}

// DefaultSenderCacheCapacity bounds the process-wide sender cache. The
// window that matters is admission→apply per in-flight transaction, summed
// over every chain in the process (parallel bench cells share the cache);
// 16k entries of ~120 bytes keep that window resident for well under 2 MB.
const DefaultSenderCacheCapacity = 16384

var senderCache = newSenderCacheState(DefaultSenderCacheCapacity)

func newSenderCacheState(capacity int) *senderCacheState {
	return &senderCacheState{
		cap:     capacity,
		entries: make(map[hashing.Hash]*senderCacheEntry, capacity),
	}
}

// SetSenderCacheCapacity clears the sender cache and re-bounds it (tests
// and memory-constrained deployments). Capacity <= 0 restores the default.
// The discarded entries are chained onto the free list (up to the new
// capacity; any surplus is left to the GC), so refilling the resized cache
// recycles them instead of allocating.
func SetSenderCacheCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSenderCacheCapacity
	}
	c := senderCache
	c.mu.Lock()
	e := c.head
	for n := 0; e != nil && n < capacity; n++ {
		next := e.next
		e.prev, e.next = nil, c.free
		c.free = e
		e = next
	}
	c.cap = capacity
	c.entries = make(map[hashing.Hash]*senderCacheEntry, capacity)
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

// SenderCacheStats is a monotonic snapshot of sender-cache effectiveness.
type SenderCacheStats struct {
	Hits, Misses, Evictions uint64
}

// ReadSenderCacheStats returns the current cumulative counters. Harnesses
// diff two snapshots and report the delta through metrics.Counters.
func ReadSenderCacheStats() SenderCacheStats {
	return SenderCacheStats{
		Hits:      senderCache.hits.Load(),
		Misses:    senderCache.misses.Load(),
		Evictions: senderCache.evictions.Load(),
	}
}

// sigDigest hashes the exact signature bytes (public key, R, S) so cache
// hits require the same signature that originally verified, not merely the
// same signed content.
func sigDigest(sig *keys.Signature) hashing.Hash {
	h := hashing.AcquireHasher()
	h.LenPrefixed(sig.PubKey)
	h.LenPrefixed(sig.R)
	h.LenPrefixed(sig.S)
	d := h.Sum()
	hashing.ReleaseHasher(h)
	return d
}

// lookup returns the cached signer for (id, sig) if that exact pair
// verified before.
func (c *senderCacheState) lookup(id hashing.Hash, sig *keys.Signature) (hashing.Address, bool) {
	sum := sigDigest(sig)
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok || e.sigSum != sum {
		c.mu.Unlock()
		c.misses.Add(1)
		return hashing.Address{}, false
	}
	c.moveToFront(e)
	addr := e.addr
	c.mu.Unlock()
	c.hits.Add(1)
	return addr, true
}

// store records a successful verification, evicting the least recently used
// entry at capacity.
func (c *senderCacheState) store(id hashing.Hash, sig *keys.Signature, addr hashing.Address) {
	sum := sigDigest(sig)
	c.mu.Lock()
	if e, ok := c.entries[id]; ok {
		// Same content re-signed (or malleated): keep the newest signature.
		e.sigSum = sum
		e.addr = addr
		c.moveToFront(e)
		c.mu.Unlock()
		return
	}
	var e *senderCacheEntry
	if len(c.entries) >= c.cap {
		e = c.evictTail()
	} else if c.free != nil {
		e, c.free = c.free, c.free.next
	} else {
		e = &senderCacheEntry{}
	}
	e.id, e.sigSum, e.addr = id, sum, addr
	c.entries[id] = e
	c.pushFront(e)
	c.mu.Unlock()
}

// evictTail unlinks and returns the least recently used entry for reuse.
// Caller holds the lock and guarantees the cache is non-empty.
func (c *senderCacheState) evictTail() *senderCacheEntry {
	e := c.tail
	c.unlink(e)
	delete(c.entries, e.id)
	c.evictions.Add(1)
	return e
}

func (c *senderCacheState) pushFront(e *senderCacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *senderCacheState) unlink(e *senderCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *senderCacheState) moveToFront(e *senderCacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// RecoverSenders verifies the signatures of txs on the shared crypto worker
// pool and returns each recovered sender in input order, with a per-index
// error for every transaction that failed. It is the batch front door the
// txpool and ApplyBlock use to pull signature recovery off the serial
// execution path: all ECDSA work for a block completes (in parallel) before
// the strictly sequential EVM loop starts, and because results are indexed
// by input position the outcome is bit-identical at every GOMAXPROCS.
//
// Duplicate pointers in txs are recovered once and share the result.
func RecoverSenders(txs []*Transaction) ([]hashing.Address, []error) {
	addrs := make([]hashing.Address, len(txs))
	errs := make([]error, len(txs))
	if len(txs) == 0 {
		return addrs, errs
	}
	if len(txs) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i, tx := range txs {
			addrs[i], errs[i] = tx.Sender()
		}
		return addrs, errs
	}
	// Sender mutates the transaction's verifiedID memo, so the same pointer
	// must not be recovered by two workers at once.
	firstIdx := make(map[*Transaction]int, len(txs))
	dup := make([]int, len(txs)) // dup[i] = index of first occurrence
	pool := keys.SharedPool()
	var wg sync.WaitGroup
	for i, tx := range txs {
		if j, seen := firstIdx[tx]; seen {
			dup[i] = j
			continue
		}
		firstIdx[tx] = i
		dup[i] = i
		i, tx := i, tx
		wg.Add(1)
		pool.Go(func() {
			defer wg.Done()
			addrs[i], errs[i] = tx.Sender()
		})
	}
	wg.Wait()
	for i, j := range dup {
		if i != j {
			addrs[i], errs[i] = addrs[j], errs[j]
		}
	}
	return addrs, errs
}
