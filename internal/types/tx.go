// Package types defines the on-chain data structures shared by every
// blockchain in the system: transactions (including the Move2 payload),
// block headers, blocks, and execution receipts.
package types

import (
	"errors"
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/u256"
)

// TxKind distinguishes transaction flavors.
type TxKind uint8

const (
	// TxCall invokes a contract (or transfers value to an account). Move1
	// is an ordinary TxCall that reaches the contract's moveTo method.
	TxCall TxKind = iota + 1
	// TxCreate deploys the code carried in Data.
	TxCreate
	// TxMove2 completes a move: it carries the Merkle proof of a contract's
	// state on the source chain and recreates it locally (paper Alg. 1).
	TxMove2
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case TxCall:
		return "call"
	case TxCreate:
		return "create"
	case TxMove2:
		return "move2"
	default:
		return "unknown"
	}
}

// StorageEntry is one storage key-value pair carried in a Move2 payload.
type StorageEntry struct {
	Key   evm.Word
	Value evm.Word
}

// Move2Payload is the proof bundle of a Move2 transaction: everything the
// target chain needs to verify V ↦ m and recreate contract c (§III-C,E).
type Move2Payload struct {
	// Contract is the identifier of the moved contract c.
	Contract hashing.Address
	// SourceChain is Bi, the chain the contract is moving from.
	SourceChain hashing.ChainID
	// SourceHeight is the block height whose state root the proof targets.
	SourceHeight uint64
	// AccountProof proves the contract's account record against the source
	// state root m.
	AccountProof []byte
	// Code is the contract code; H(Code) must match the proven record.
	Code []byte
	// Storage is the complete storage V; the target rebuilds the storage
	// tree and compares its root with the proven record (completeness).
	Storage []StorageEntry
}

// Transaction is a signed message submitted to one chain.
type Transaction struct {
	// ChainID pins the transaction to its destination chain so it cannot be
	// replayed on another chain.
	ChainID hashing.ChainID
	Nonce   uint64
	Kind    TxKind
	// From is the sender; Sign fills it in and Sender verifies that the
	// signature was produced by this address.
	From     hashing.Address
	To       hashing.Address // ignored for TxCreate
	Value    u256.Int
	GasLimit uint64
	GasPrice u256.Int
	Data     []byte
	Move2    *Move2Payload // only for TxMove2

	Sig keys.Signature

	// verifiedID caches the tx id whose signature already checked out, so
	// pools and executors do not repeat the ECDSA verification for the same
	// content (mutating any signed field changes the id and voids the cache).
	verifiedID hashing.Hash

	// sigDone is non-nil while a SignOn signature is being produced on a
	// worker; WaitSig receives the result exactly once.
	sigDone chan error
}

// Errors returned by transaction validation.
var (
	ErrBadTxSignature = errors.New("types: invalid transaction signature")
	ErrTxChainID      = errors.New("types: transaction bound to another chain")
	ErrMissingPayload = errors.New("types: move2 transaction without payload")
)

// encodeUnsigned encodes every field covered by the signature.
func (tx *Transaction) encodeUnsigned() []byte {
	w := codec.NewWriter(256)
	w.WriteUvarint(uint64(tx.ChainID))
	w.WriteUvarint(tx.Nonce)
	w.WriteUvarint(uint64(tx.Kind))
	w.WriteAddress(tx.From)
	w.WriteAddress(tx.To)
	w.WriteWord(tx.Value.Bytes32())
	w.WriteUvarint(tx.GasLimit)
	w.WriteWord(tx.GasPrice.Bytes32())
	w.WriteBytes(tx.Data)
	if tx.Move2 != nil {
		w.WriteBool(true)
		encodeMove2(w, tx.Move2)
	} else {
		w.WriteBool(false)
	}
	return w.Bytes()
}

func encodeMove2(w *codec.Writer, m *Move2Payload) {
	w.WriteAddress(m.Contract)
	w.WriteUvarint(uint64(m.SourceChain))
	w.WriteUvarint(m.SourceHeight)
	w.WriteBytes(m.AccountProof)
	w.WriteBytes(m.Code)
	w.WriteUvarint(uint64(len(m.Storage)))
	for _, e := range m.Storage {
		w.WriteWord(e.Key)
		w.WriteWord(e.Value)
	}
}

// storageEntrySize is the encoded size of one StorageEntry (two 32-byte
// words); decoders use it to bound preallocation from a hostile count.
const storageEntrySize = 64

func decodeMove2(r *codec.Reader) *Move2Payload {
	var m Move2Payload
	m.Contract = r.ReadAddress()
	m.SourceChain = hashing.ChainID(r.ReadUvarint())
	m.SourceHeight = r.ReadUvarint()
	m.AccountProof = r.ReadBytes()
	m.Code = r.ReadBytes()
	n := r.ReadUvarint()
	if n > 1<<20 {
		return nil
	}
	// Preallocate at most what the remaining input could actually hold: a
	// corrupted count costs O(remaining) memory, never O(claimed) — the
	// loop below then fails with ErrTruncated as soon as the input runs dry.
	m.Storage = make([]StorageEntry, 0, r.CapCount(n, storageEntrySize))
	for i := uint64(0); i < n; i++ {
		var e StorageEntry
		e.Key = r.ReadWord()
		e.Value = r.ReadWord()
		if r.Err() != nil {
			return nil
		}
		m.Storage = append(m.Storage, e)
	}
	return &m
}

// EncodeMove2Payload serializes a standalone Move2 payload (the relay
// journal persists in-flight payloads between crash and recovery).
func EncodeMove2Payload(m *Move2Payload) []byte {
	w := codec.NewWriter(256 + storageEntrySize*len(m.Storage))
	encodeMove2(w, m)
	return w.Bytes()
}

// DecodeMove2Payload parses a standalone Move2 payload encoding.
func DecodeMove2Payload(b []byte) (*Move2Payload, error) {
	r := codec.NewReader(b)
	m := decodeMove2(r)
	if m == nil {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("decode move2 payload: %w", err)
		}
		return nil, errors.New("decode move2 payload: oversized storage set")
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decode move2 payload: %w", err)
	}
	return m, nil
}

// ID returns the transaction identifier: the hash of the unsigned encoding.
// Signatures are excluded so the id is stable under re-signing, keeping
// block hashes deterministic in simulations.
//
// The hash is computed through a pooled hasher rather than by materializing
// encodeUnsigned(): ID is recomputed on every signature-cache check (see
// Sender), which makes it one of the hottest functions in the system.
// hashUnsigned must stay byte-identical to encodeUnsigned.
func (tx *Transaction) ID() hashing.Hash {
	h := hashing.AcquireHasher()
	tx.hashUnsigned(h)
	id := h.Sum()
	hashing.ReleaseHasher(h)
	return id
}

// hashUnsigned feeds the signed-field encoding into h, mirroring
// encodeUnsigned byte for byte (TestIDMatchesUnsignedEncoding holds the two
// in lockstep).
func (tx *Transaction) hashUnsigned(h *hashing.Hasher) {
	h.Uvarint(uint64(tx.ChainID))
	h.Uvarint(tx.Nonce)
	h.Uvarint(uint64(tx.Kind))
	h.Write(tx.From[:])
	h.Write(tx.To[:])
	val := tx.Value.Bytes32()
	h.Write(val[:])
	h.Uvarint(tx.GasLimit)
	gp := tx.GasPrice.Bytes32()
	h.Write(gp[:])
	h.LenPrefixed(tx.Data)
	if tx.Move2 != nil {
		h.Byte(1)
		m := tx.Move2
		h.Write(m.Contract[:])
		h.Uvarint(uint64(m.SourceChain))
		h.Uvarint(m.SourceHeight)
		h.LenPrefixed(m.AccountProof)
		h.LenPrefixed(m.Code)
		h.Uvarint(uint64(len(m.Storage)))
		for _, e := range m.Storage {
			h.Write(e.Key[:])
			h.Write(e.Value[:])
		}
	} else {
		h.Byte(0)
	}
}

// Sign sets From to the key's address and signs the transaction.
func (tx *Transaction) Sign(kp *keys.KeyPair) error {
	tx.From = kp.Address()
	id := tx.ID()
	sig, err := kp.Sign(id)
	if err != nil {
		return fmt.Errorf("sign tx: %w", err)
	}
	tx.Sig = sig
	tx.verifiedID = id // freshly produced by the key for this content
	// Seed the process-wide cache too: consensus decodes the proposal
	// payload into fresh copies, and only the cache survives the copy.
	senderCache.store(id, &tx.Sig, tx.From)
	return nil
}

// SignOn is Sign with the ECDSA work deferred to a worker pool: From and
// the transaction id are fixed synchronously (so the id, and everything
// derived from it, is identical to the inline path), while the signature is
// produced concurrently. Callers must WaitSig before reading or encoding
// the signature. A nil pool falls back to the shared pool.
func (tx *Transaction) SignOn(kp *keys.KeyPair, pool *keys.Pool) {
	tx.From = kp.Address()
	id := tx.ID()
	done := make(chan error, 1)
	tx.sigDone = done
	if pool == nil {
		pool = keys.SharedPool()
	}
	pool.Go(func() {
		sig, err := kp.Sign(id)
		if err != nil {
			done <- fmt.Errorf("sign tx: %w", err)
			return
		}
		tx.Sig = sig
		tx.verifiedID = id
		senderCache.store(id, &tx.Sig, tx.From)
		done <- nil
	})
}

// WaitSig blocks until a pending SignOn signature lands and returns its
// error. The channel receive orders the worker's writes (Sig, verifiedID)
// before the caller's reads. It is idempotent: after the first call, or if
// SignOn was never used, it returns nil immediately.
func (tx *Transaction) WaitSig() error {
	if tx.sigDone == nil {
		return nil
	}
	err := <-tx.sigDone
	tx.sigDone = nil
	return err
}

// Sender verifies the signature and returns the signer's address.
//
// Three tiers, cheapest first: the per-object verifiedID memo (this pointer
// already verified), the process-wide sender cache (this exact content and
// signature verified before, possibly on a different copy), and finally the
// full ECDSA verification, whose success populates both tiers.
func (tx *Transaction) Sender() (hashing.Address, error) {
	id := tx.ID()
	if !tx.verifiedID.IsZero() && tx.verifiedID == id {
		return tx.From, nil
	}
	if addr, ok := senderCache.lookup(id, &tx.Sig); ok && addr == tx.From {
		tx.verifiedID = id
		return addr, nil
	}
	addr, err := tx.Sig.Verify(id)
	if err != nil {
		return hashing.Address{}, fmt.Errorf("%w: %v", ErrBadTxSignature, err)
	}
	if addr != tx.From {
		return hashing.Address{}, fmt.Errorf("%w: signer %s does not match From %s", ErrBadTxSignature, addr, tx.From)
	}
	tx.verifiedID = id
	senderCache.store(id, &tx.Sig, addr)
	return addr, nil
}

// ValidateStateless performs the checks that need no cryptography: chain
// binding and payload shape. Callers that also need the sender recovered
// (every admission path) follow up with Sender, which memoizes.
func (tx *Transaction) ValidateStateless(chain hashing.ChainID) error {
	if tx.ChainID != chain {
		return fmt.Errorf("%w: tx for %s, chain is %s", ErrTxChainID, tx.ChainID, chain)
	}
	if tx.Kind == TxMove2 && tx.Move2 == nil {
		return ErrMissingPayload
	}
	return nil
}

// Validate performs all stateless checks for a chain with the given id,
// including signature verification.
func (tx *Transaction) Validate(chain hashing.ChainID) error {
	if err := tx.ValidateStateless(chain); err != nil {
		return err
	}
	if _, err := tx.Sender(); err != nil {
		return err
	}
	return nil
}

// Encode serializes the full signed transaction.
func (tx *Transaction) Encode() []byte {
	w := codec.NewWriter(320)
	w.WriteBytes(tx.encodeUnsigned())
	w.WriteBytes(tx.Sig.PubKey)
	w.WriteBytes(tx.Sig.R)
	w.WriteBytes(tx.Sig.S)
	return w.Bytes()
}

// Maximum encoded sizes of the ECDSA P-256 signature fields (generous over
// the real 65/32/32 bytes); longer claims are rejected before allocating.
const (
	maxPubKeyLen   = 96
	maxSigScalarLn = 48
)

// DecodeTransaction parses an encoded signed transaction.
func DecodeTransaction(b []byte) (*Transaction, error) {
	r := codec.NewReader(b)
	unsigned := r.ReadBytes()
	var tx Transaction
	tx.Sig.PubKey = r.ReadBytesMax(maxPubKeyLen)
	tx.Sig.R = r.ReadBytesMax(maxSigScalarLn)
	tx.Sig.S = r.ReadBytesMax(maxSigScalarLn)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decode tx: %w", err)
	}
	ur := codec.NewReader(unsigned)
	tx.ChainID = hashing.ChainID(ur.ReadUvarint())
	tx.Nonce = ur.ReadUvarint()
	tx.Kind = TxKind(ur.ReadUvarint())
	tx.From = ur.ReadAddress()
	tx.To = ur.ReadAddress()
	val := ur.ReadWord()
	tx.Value = u256.FromBytes(val[:])
	tx.GasLimit = ur.ReadUvarint()
	gp := ur.ReadWord()
	tx.GasPrice = u256.FromBytes(gp[:])
	tx.Data = ur.ReadBytes()
	if ur.ReadBool() {
		tx.Move2 = decodeMove2(ur)
		if tx.Move2 == nil {
			if err := ur.Err(); err != nil {
				return nil, fmt.Errorf("decode tx: %w", err)
			}
			return nil, errors.New("decode tx: oversized move2 payload")
		}
	}
	if err := ur.Finish(); err != nil {
		return nil, fmt.Errorf("decode tx: %w", err)
	}
	return &tx, nil
}
