package tendermint

import (
	"bytes"
	"testing"

	"scmove/internal/hashing"
)

func TestWireProposalRoundTrip(t *testing.T) {
	c := WireMessages()
	in := msgProposal{Height: 42, Round: 3, Payload: []byte("block bytes"), From: 5}
	enc, err := c.EncodePayload(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(msgProposal)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.Height != in.Height || got.Round != in.Round || got.From != in.From ||
		!bytes.Equal(got.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestWireVoteRoundTrip(t *testing.T) {
	c := WireMessages()
	for _, kind := range []voteKind{votePrevote, votePrecommit} {
		in := msgVote{Kind: kind, Height: 7, Round: 1, PayloadHash: hashing.Sum([]byte("p")), From: 2}
		enc, err := c.EncodePayload(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.DecodePayload(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.(msgVote); got != in {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	}
}

func TestWireRejectsHostileInput(t *testing.T) {
	c := WireMessages()
	cases := [][]byte{
		nil,
		{0x09},             // unknown kind
		{0x01},             // proposal with nothing else
		{0x02, 0x07},       // vote with bad kind and nothing else
		{0x01, 0x01, 0x01}, // proposal missing payload
		append([]byte{0x01, 0x01, 0x01}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // absurd payload length
	}
	for i, b := range cases {
		if _, err := c.DecodePayload(b); err == nil {
			t.Errorf("case %d decoded cleanly", i)
		}
	}
	// Out-of-range indices are rejected even when framing is intact.
	enc, err := c.EncodePayload(msgProposal{Height: 1, Round: maxWireIndex + 1, Payload: nil, From: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodePayload(enc); err == nil {
		t.Error("oversized round decoded cleanly")
	}
	// Trailing garbage is an error.
	good, _ := c.EncodePayload(msgVote{Kind: votePrevote, Height: 1, Round: 0, From: 0})
	if _, err := c.DecodePayload(append(good, 0xEE)); err == nil {
		t.Error("trailing bytes decoded cleanly")
	}
	// Unencodable payload types error instead of panicking.
	if _, err := c.EncodePayload("not a consensus message"); err == nil {
		t.Error("foreign payload encoded cleanly")
	}
}
