package tendermint

import (
	"fmt"
	"testing"
	"time"

	"scmove/internal/simclock"
	"scmove/internal/simnet"
)

// recordingApp captures commits and hands out height-tagged payloads.
type recordingApp struct {
	commits map[uint64][]byte
	order   []uint64
}

func newRecordingApp() *recordingApp {
	return &recordingApp{commits: make(map[uint64][]byte)}
}

func (a *recordingApp) Propose(height uint64) []byte {
	return []byte(fmt.Sprintf("payload-%d", height))
}

func (a *recordingApp) Commit(height uint64, payload []byte) {
	if _, dup := a.commits[height]; dup {
		panic("double commit")
	}
	a.commits[height] = payload
	a.order = append(a.order, height)
}

func newCluster(t *testing.T, n int) (*simclock.Scheduler, *Cluster, *recordingApp) {
	t.Helper()
	sched := simclock.New()
	net := simnet.New(sched, simnet.Config{Seed: 1, JitterFrac: 0.1})
	app := newRecordingApp()
	ids := make([]simnet.NodeID, n)
	regions := make([]simnet.Region, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i + 1)
		regions[i] = simnet.Region(i % simnet.RegionCount)
	}
	cluster, err := NewCluster(sched, net, app, DefaultConfig(), ids, regions)
	if err != nil {
		t.Fatal(err)
	}
	return sched, cluster, app
}

func TestClusterCommitsSuccessiveHeights(t *testing.T) {
	sched, cluster, app := newCluster(t, 10)
	cluster.Start()
	sched.RunUntil(62 * time.Second)

	got := cluster.CommittedHeight()
	// 5 s interval plus WAN voting: expect roughly one block per 5-6 s.
	if got < 9 || got > 13 {
		t.Fatalf("committed height = %d, want ≈11", got)
	}
	// Heights commit in order, each exactly once (Commit panics on dup).
	for i, h := range app.order {
		if h != uint64(i+1) {
			t.Fatalf("commit order broken: %v", app.order)
		}
	}
	// Payload content survives.
	if string(app.commits[3]) != "payload-3" {
		t.Fatalf("payload = %q", app.commits[3])
	}
}

func TestCommitLatencyAboveInterval(t *testing.T) {
	sched, cluster, _ := newCluster(t, 10)
	cluster.Start()
	sched.RunUntil(60 * time.Second)
	t2, ok2 := cluster.CommitTime(2)
	t3, ok3 := cluster.CommitTime(3)
	if !ok2 || !ok3 {
		t.Fatal("heights 2 and 3 must commit")
	}
	gap := t3 - t2
	// The paper observes block latency slightly above the 5 s interval.
	if gap < 5*time.Second || gap > 7*time.Second {
		t.Fatalf("inter-block gap = %v, want 5-7 s", gap)
	}
}

func TestToleratesFCrashFaults(t *testing.T) {
	sched, cluster, _ := newCluster(t, 10) // f = 3
	cluster.CrashValidator(1)
	cluster.CrashValidator(4)
	cluster.CrashValidator(7)
	cluster.Start()
	sched.RunUntil(90 * time.Second)
	if got := cluster.CommittedHeight(); got < 5 {
		t.Fatalf("committed height = %d with f faults, want progress", got)
	}
}

func TestCrashedProposerRotatesOut(t *testing.T) {
	sched, cluster, _ := newCluster(t, 4)
	// Height 1's proposer is index (1+0)%4 = 1; crash it.
	cluster.CrashValidator(1)
	cluster.Start()
	sched.RunUntil(30 * time.Second)
	if cluster.CommittedHeight() < 1 {
		t.Fatal("cluster must commit past a crashed proposer via round change")
	}
}

func TestHaltsBeyondF(t *testing.T) {
	sched, cluster, _ := newCluster(t, 10) // quorum = 7, so 4 crashes halt it
	for _, i := range []int{0, 3, 6, 9} {
		cluster.CrashValidator(i)
	}
	cluster.Start()
	sched.RunUntil(60 * time.Second)
	if got := cluster.CommittedHeight(); got != 0 {
		t.Fatalf("committed height = %d with >f faults, want 0 (safety)", got)
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := map[int]int{1: 1, 3: 3, 4: 3, 7: 5, 10: 7, 13: 9}
	for n, want := range cases {
		_, cluster, _ := newCluster(t, n)
		if got := cluster.Quorum(); got != want {
			t.Errorf("quorum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRestartValidatorRejoins(t *testing.T) {
	sched, cluster, _ := newCluster(t, 10) // quorum = 7
	// 4 crashes halt the cluster; restarting one restores the quorum.
	for _, i := range []int{0, 3, 6, 9} {
		cluster.CrashValidator(i)
	}
	cluster.Start()
	sched.RunUntil(60 * time.Second)
	if got := cluster.CommittedHeight(); got != 0 {
		t.Fatalf("height = %d before restart, want halt", got)
	}
	cluster.RestartValidator(0)
	sched.RunUntil(4 * time.Minute)
	if got := cluster.CommittedHeight(); got < 3 {
		t.Fatalf("height = %d after restart, want recovery", got)
	}
}

func TestScheduleCrashRestartOutage(t *testing.T) {
	sched, cluster, _ := newCluster(t, 10)
	// Take 4 of 10 down for a window: commits stop, then resume.
	for _, i := range []int{0, 3, 6, 9} {
		cluster.ScheduleCrashRestart(i, 30*time.Second, 2*time.Minute)
	}
	cluster.Start()
	sched.RunUntil(30 * time.Second)
	beforeOutage := cluster.CommittedHeight()
	if beforeOutage < 2 {
		t.Fatalf("height = %d before the outage", beforeOutage)
	}
	sched.RunUntil(2 * time.Minute)
	duringOutage := cluster.CommittedHeight()
	sched.RunUntil(6 * time.Minute)
	after := cluster.CommittedHeight()
	if after <= duringOutage {
		t.Fatalf("height stuck at %d after restarts", after)
	}
}

func TestRoundTimeoutCapped(t *testing.T) {
	sched := simclock.New()
	net := simnet.New(sched, simnet.Config{Seed: 1})
	cfg := DefaultConfig()
	cfg.ProposeTimeout = 2 * time.Second
	cfg.MaxRoundTimeout = 10 * time.Second
	ids := []simnet.NodeID{1, 2, 3, 4}
	regions := make([]simnet.Region, 4)
	cluster, err := NewCluster(sched, net, newRecordingApp(), cfg, ids, regions)
	if err != nil {
		t.Fatal(err)
	}
	// With only 2 of 4 validators up the cluster cannot commit; rounds keep
	// advancing. Uncapped, round r waits 2(r+1) seconds, so by 10 minutes a
	// validator would sit at round ~23; capped at 10 s it must churn through
	// far more rounds, which is what bounds the post-partition recovery time.
	cluster.CrashValidator(2)
	cluster.CrashValidator(3)
	cluster.Start()
	sched.RunUntil(10 * time.Minute)
	if r := cluster.validators[0].round; r < 40 {
		t.Fatalf("round = %d after 10 min, want steady ~10 s rounds under the cap", r)
	}
}

func TestStragglerCatchesUpAfterLoss(t *testing.T) {
	// Drop every message to and from one validator for a while: it falls
	// behind. Once traffic heals it must catch back up via block sync
	// rather than stalling the quorum forever.
	sched, cluster, _ := newCluster(t, 10)
	ids := cluster.NodeIDs()
	wan := cluster.net.(*simnet.Network) // fault injection is a deterministic-network feature
	for _, other := range ids[1:] {
		// SetLinkCut is bidirectional.
		wan.SetLinkCut(ids[0], other, true)
	}
	cluster.Start()
	sched.RunUntil(60 * time.Second)
	behind := cluster.validators[0].height
	committed := cluster.CommittedHeight()
	if behind >= committed {
		t.Fatalf("isolated validator at %d, cluster at %d: expected a straggler", behind, committed)
	}
	for _, other := range ids[1:] {
		wan.SetLinkCut(ids[0], other, false)
	}
	sched.RunUntil(2 * time.Minute)
	if got := cluster.validators[0].height; got <= committed {
		t.Fatalf("validator stuck at %d after heal (cluster committed %d)", got, cluster.CommittedHeight())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []uint64 {
		sched, cluster, app := newCluster(t, 7)
		cluster.Start()
		sched.RunUntil(40 * time.Second)
		return app.order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("runs must be deterministic")
		}
	}
}
