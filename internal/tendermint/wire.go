package tendermint

import (
	"errors"
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/simnet"
)

// Wire codec for consensus messages: the byte encoding the TCP transport
// carries between validators. The discrete-event network passes message
// values by reference and never encodes; over sockets every proposal and
// vote crosses as one frame payload in this format.
//
// Decoding treats input as hostile in the codec package's style: the
// proposal payload is ReadBytesMax-bounded, claimed indices are
// range-checked, and trailing bytes are an error.

const (
	wireProposal byte = 1
	wireVote     byte = 2

	// maxWirePayload bounds a proposal's embedded block payload; a 2000-tx
	// block encodes to ~1 MB, so 64 MiB matches the transport frame bound.
	maxWirePayload = 64 << 20
	// maxWireIndex bounds claimed validator indices and rounds: real
	// clusters have single-digit validators and rounds only grow past a
	// handful under sustained faults. A million leaves six orders of
	// headroom while keeping hostile values from turning into huge ints.
	maxWireIndex = 1 << 20
)

// WireMessages returns the codec for tendermint's WAN message types.
func WireMessages() simnet.WireCodec { return wireMessages{} }

type wireMessages struct{}

func (wireMessages) EncodePayload(payload any) ([]byte, error) {
	switch msg := payload.(type) {
	case msgProposal:
		w := codec.NewWriter(len(msg.Payload) + 32)
		w.WriteUvarint(uint64(wireProposal))
		w.WriteUvarint(msg.Height)
		w.WriteUvarint(uint64(msg.Round))
		w.WriteBytes(msg.Payload)
		w.WriteUvarint(uint64(msg.From))
		return w.Bytes(), nil
	case msgVote:
		w := codec.NewWriter(64)
		w.WriteUvarint(uint64(wireVote))
		w.WriteUvarint(uint64(msg.Kind))
		w.WriteUvarint(msg.Height)
		w.WriteUvarint(uint64(msg.Round))
		w.WriteHash(msg.PayloadHash)
		w.WriteUvarint(uint64(msg.From))
		return w.Bytes(), nil
	default:
		return nil, fmt.Errorf("tendermint: unencodable payload type %T", payload)
	}
}

func (wireMessages) DecodePayload(b []byte) (any, error) {
	r := codec.NewReader(b)
	kind := r.ReadUvarint()
	switch byte(kind) {
	case wireProposal:
		var msg msgProposal
		msg.Height = r.ReadUvarint()
		round := r.ReadUvarint()
		msg.Payload = r.ReadBytesMax(maxWirePayload)
		from := r.ReadUvarint()
		if err := r.Finish(); err != nil {
			return nil, fmt.Errorf("tendermint: decode proposal: %w", err)
		}
		if round > maxWireIndex || from > maxWireIndex {
			return nil, errors.New("tendermint: decode proposal: index out of range")
		}
		msg.Round, msg.From = int(round), int(from)
		return msg, nil
	case wireVote:
		var msg msgVote
		vk := r.ReadUvarint()
		msg.Height = r.ReadUvarint()
		round := r.ReadUvarint()
		msg.PayloadHash = r.ReadHash()
		from := r.ReadUvarint()
		if err := r.Finish(); err != nil {
			return nil, fmt.Errorf("tendermint: decode vote: %w", err)
		}
		if vk != uint64(votePrevote) && vk != uint64(votePrecommit) {
			return nil, errors.New("tendermint: decode vote: unknown vote kind")
		}
		if round > maxWireIndex || from > maxWireIndex {
			return nil, errors.New("tendermint: decode vote: index out of range")
		}
		msg.Kind, msg.Round, msg.From = voteKind(vk), int(round), int(from)
		return msg, nil
	default:
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("tendermint: decode message: %w", err)
		}
		return nil, fmt.Errorf("tendermint: unknown wire message kind %d", kind)
	}
}
