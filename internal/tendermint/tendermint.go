// Package tendermint implements the BFT consensus of the Burrow-like chain:
// a propose/prevote/precommit state machine with 2f+1 quorums and rotating
// proposers, executed by real validator processes exchanging messages over
// the simulated WAN (paper §II, §VI).
//
// The implementation captures the protocol structure that the paper's
// evaluation depends on — commit latency is one proposal broadcast plus two
// voting rounds over the inter-region latency distribution, and blocks are
// spaced by a configured interval (5 s in the experiments) — while omitting
// the full Tendermint locking rules needed against equivocating proposers
// (validators here are honest-or-crashed, the failure model the paper's
// cluster exhibits).
package tendermint

import (
	"fmt"
	"math/rand"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/simclock"
	"scmove/internal/simnet"
)

// App is the replicated application: the chain executor. Propose is invoked
// on the current proposer only; Commit exactly once per height, at the
// simulated time the first validator observes a precommit quorum.
type App interface {
	// Propose returns the payload (an encoded tx batch) for height.
	Propose(height uint64) []byte
	// Commit applies the decided payload for height.
	Commit(height uint64, payload []byte)
}

// Config tunes a validator cluster.
type Config struct {
	// Interval is the wait between a commit and the next proposal (the
	// paper configures 5 s).
	Interval time.Duration
	// ProposeTimeout bounds waiting for a proposal before moving to the
	// next round (and proposer).
	ProposeTimeout time.Duration
	// MaxRoundTimeout caps the per-round timeout growth. Without a cap a
	// long partition drives the round count — and with it the linear
	// timeout — so high that the cluster waits minutes before retrying
	// after the partition heals. Zero means uncapped.
	MaxRoundTimeout time.Duration
}

// DefaultConfig returns the experiment configuration of §VI.
func DefaultConfig() Config {
	return Config{
		Interval:        5 * time.Second,
		ProposeTimeout:  2 * time.Second,
		MaxRoundTimeout: 30 * time.Second,
	}
}

// Cluster is one shard's validator set plus its replicated application.
// Consensus runs on every validator; the deterministic payload execution
// runs once, on the first commit observation (re-execution on the other
// validators would be byte-identical, so the simulation skips it).
type Cluster struct {
	cfg        Config
	sched      simclock.Clock
	net        simnet.Transport
	app        App
	validators []*Validator
	committed  map[uint64]bool

	commitTimes map[uint64]time.Duration

	counters *metrics.Counters
	evidence []Evidence
}

// Evidence records one detected equivocation: a validator observed two
// conflicting messages from the same sender for the same (height, round).
// Detection is ignore-and-record — the conflicting message is discarded and
// consensus continues; it never stalls on a misbehaving peer.
type Evidence struct {
	// Proposal distinguishes proposal equivocation from vote equivocation.
	Proposal bool
	// Kind is the vote kind for vote equivocation (zero for proposals).
	Kind     voteKind
	Height   uint64
	Round    int
	From     int // equivocating validator index
	Detector int // validator that observed the conflict
}

// ByzantineBehavior switches on adversarial actions for one validator. The
// zero value is honest. Byzantine validators stay within the f < n/3 bound
// the protocol tolerates: they equivocate but cannot forge other
// validators' messages.
type ByzantineBehavior struct {
	// EquivocateProposals makes the validator, when it is the proposer,
	// send the honest payload to half its peers and a conflicting
	// (junk-extended, hence undecodable) twin to the other half.
	EquivocateProposals bool
	// EquivocateVotes makes the validator send conflicting prevotes and
	// precommits (genuine hash to half its peers, a flipped hash to the
	// rest).
	EquivocateVotes bool
}

// SetByzantine configures validator i's adversarial behavior.
func (c *Cluster) SetByzantine(i int, b ByzantineBehavior) {
	c.validators[i].byz = b
}

// Observe mirrors Byzantine-detection events ("byzantine.equivocation.*",
// "byzantine.badproposer") into the shared counter set.
func (c *Cluster) Observe(m *metrics.Counters) { c.counters = m }

// Evidence returns all recorded equivocation evidence, in detection order.
func (c *Cluster) Evidence() []Evidence { return c.evidence }

func (c *Cluster) inc(name string) {
	if c.counters != nil {
		c.counters.Inc(name)
	}
}

func (c *Cluster) noteEquivocation(ev Evidence) {
	if ev.Proposal {
		c.inc("byzantine.equivocation.proposal")
	} else {
		c.inc("byzantine.equivocation.vote")
	}
	c.evidence = append(c.evidence, ev)
}

// NewCluster creates n validators on the given network nodes and regions.
// Nodes must already be distinct ids; regions assigns each validator's
// placement.
func NewCluster(sched simclock.Clock, net simnet.Transport, app App,
	cfg Config, ids []simnet.NodeID, regions []simnet.Region) (*Cluster, error) {
	if len(ids) == 0 || len(ids) != len(regions) {
		return nil, fmt.Errorf("tendermint: need matching ids and regions, got %d/%d", len(ids), len(regions))
	}
	c := &Cluster{
		cfg:         cfg,
		sched:       sched,
		net:         net,
		app:         app,
		committed:   make(map[uint64]bool),
		commitTimes: make(map[uint64]time.Duration),
	}
	c.validators = make([]*Validator, len(ids))
	for i, id := range ids {
		v := &Validator{
			cluster:   c,
			id:        id,
			index:     i,
			n:         len(ids),
			votes:     make(map[voteKey]map[int]bool),
			firstSeen: make(map[evKey]*seenRec),
		}
		c.validators[i] = v
		if err := net.Register(id, regions[i], func(from simnet.NodeID, payload any) {
			v.handle(payload)
		}); err != nil {
			return nil, fmt.Errorf("tendermint: register validator %d: %w", i, err)
		}
	}
	return c, nil
}

// Start launches consensus at height 1 on every validator.
func (c *Cluster) Start() {
	for _, v := range c.validators {
		v.startHeight(1)
	}
}

// Quorum returns the vote threshold (2f+1 out of n = 3f+1; for arbitrary n,
// the smallest integer strictly greater than 2n/3).
func (c *Cluster) Quorum() int { return 2*len(c.validators)/3 + 1 }

// CrashValidator stops a validator (it neither sends nor receives).
func (c *Cluster) CrashValidator(i int) {
	c.net.SetNodeDown(c.validators[i].id, true)
	c.validators[i].crashed = true
}

// RestartValidator revives a crashed validator: its volatile consensus
// state (votes, buffered messages) is lost, and it rejoins at the height
// after the highest commit the replicated application knows, catching up
// on the current height via its peers' traffic.
func (c *Cluster) RestartValidator(i int) {
	v := c.validators[i]
	if !v.crashed {
		return
	}
	c.net.SetNodeDown(v.id, false)
	v.crashed = false
	v.votes = make(map[voteKey]map[int]bool)
	v.firstSeen = make(map[evKey]*seenRec)
	v.pending = nil
	v.startHeight(c.CommittedHeight() + 1)
}

// ScheduleCrashRestart crashes validator i at simulated time `at` and
// restarts it at `restartAt` (restartAt ≤ at leaves it down).
func (c *Cluster) ScheduleCrashRestart(i int, at, restartAt time.Duration) {
	c.sched.At(at, func() { c.CrashValidator(i) })
	if restartAt > at {
		c.sched.At(restartAt, func() { c.RestartValidator(i) })
	}
}

// NodeIDs returns each validator's network node id, in validator order —
// fault schedules (partitions, crash-restarts) target these.
func (c *Cluster) NodeIDs() []simnet.NodeID {
	ids := make([]simnet.NodeID, len(c.validators))
	for i, v := range c.validators {
		ids[i] = v.id
	}
	return ids
}

// CommittedHeight returns the highest committed height.
func (c *Cluster) CommittedHeight() uint64 {
	var max uint64
	for h := range c.committed {
		if h > max {
			max = h
		}
	}
	return max
}

// CommitTime returns the simulated time at which a height committed.
func (c *Cluster) CommitTime(height uint64) (time.Duration, bool) {
	t, ok := c.commitTimes[height]
	return t, ok
}

// commit applies the payload once per height.
func (c *Cluster) commit(height uint64, payload []byte) {
	if c.committed[height] {
		return
	}
	c.committed[height] = true
	c.commitTimes[height] = c.sched.Now()
	c.app.Commit(height, payload)
}

// message kinds exchanged between validators.
type msgProposal struct {
	Height  uint64
	Round   int
	Payload []byte
	// From is the claimed sender index; receivers check it against the
	// round's legitimate proposer and use it to key equivocation evidence.
	From int
}

type voteKind uint8

const (
	votePrevote voteKind = iota + 1
	votePrecommit
)

type msgVote struct {
	Kind        voteKind
	Height      uint64
	Round       int
	PayloadHash hashing.Hash
	From        int
}

type voteKey struct {
	kind   voteKind
	height uint64
	round  int
	hash   hashing.Hash
}

// evKey identifies the slot a sender may speak in exactly once: one
// proposal (or one vote of each kind) per (height, round, sender).
type evKey struct {
	proposal bool
	kind     voteKind
	height   uint64
	round    int
	from     int
}

// seenRec remembers the first message hash seen in a slot; reported
// ensures each conflicting slot is converted to evidence at most once per
// detector, so a flood of conflicting copies cannot grow evidence
// unboundedly.
type seenRec struct {
	hash     hashing.Hash
	reported bool
}

// Validator is one consensus participant.
type Validator struct {
	cluster *Cluster
	id      simnet.NodeID
	index   int
	n       int
	crashed bool

	height       uint64
	round        int
	proposal     []byte
	proposalHash hashing.Hash
	hasProposal  bool
	prevoted     bool
	precommitted bool
	decided      bool

	votes     map[voteKey]map[int]bool
	firstSeen map[evKey]*seenRec
	pending   []any // messages for heights/rounds not yet started
	byz       ByzantineBehavior
}

// noteFirstSeen enforces one-message-per-slot: the first hash in a slot is
// remembered, identical re-deliveries (network duplicates) pass, and a
// conflicting hash records equivocation evidence and is rejected.
func (v *Validator) noteFirstSeen(key evKey, h hashing.Hash) bool {
	rec, ok := v.firstSeen[key]
	if !ok {
		v.firstSeen[key] = &seenRec{hash: h}
		return true
	}
	if rec.hash == h {
		return true
	}
	if !rec.reported {
		rec.reported = true
		v.cluster.noteEquivocation(Evidence{
			Proposal: key.proposal, Kind: key.kind,
			Height: key.height, Round: key.round,
			From: key.from, Detector: v.index,
		})
	}
	return false
}

// proposerIndex implements round-robin proposer rotation.
func proposerIndex(height uint64, round, n int) int {
	return int((height + uint64(round)) % uint64(n))
}

func (v *Validator) startHeight(h uint64) {
	if v.crashed {
		return
	}
	v.height = h
	v.round = 0
	v.startRound()
}

// drainPending replays buffered messages that have become current.
func (v *Validator) drainPending() {
	pending := v.pending
	v.pending = nil
	for _, msg := range pending {
		v.handle(msg)
	}
}

func (v *Validator) startRound() {
	v.proposal = nil
	v.hasProposal = false
	v.prevoted = false
	v.precommitted = false
	v.decided = false

	if proposerIndex(v.height, v.round, v.n) == v.index {
		payload := v.cluster.app.Propose(v.height)
		msg := msgProposal{Height: v.height, Round: v.round, Payload: payload, From: v.index}
		if v.byz.EquivocateProposals {
			// Conflicting twin: the honest payload extended with junk, sent
			// alongside the genuine proposal to half the peers. Whichever
			// copy arrives first wins that peer's prevote, the second is
			// recorded as equivocation evidence; at worst the split vote
			// costs this round and the timeout rotates to an honest
			// proposer — safety is never at risk, only latency.
			twin := msg
			twin.Payload = append(append([]byte(nil), payload...), 0xDE, 0xAD, byte(v.height))
			v.broadcastEquivocating(msg, twin)
			v.handle(msg)
		} else {
			v.broadcast(msg)
			v.handle(msg) // deliver to self
		}
	}
	// Round timeout: if this round does not decide in time, try the next
	// proposer. Grows linearly with the round to eventually outwait WAN
	// latency under crash faults, capped so liveness recovers promptly
	// after long partitions.
	height, round := v.height, v.round
	timeout := v.cluster.cfg.ProposeTimeout * time.Duration(round+1)
	if max := v.cluster.cfg.MaxRoundTimeout; max > 0 && timeout > max {
		timeout = max
	}
	v.cluster.sched.After(timeout, func() {
		if v.crashed || v.decided || v.height != height || v.round != round {
			return
		}
		v.round++
		v.startRound()
	})
	v.drainPending()
}

func (v *Validator) broadcast(msg any) {
	for _, other := range v.cluster.validators {
		if other.index != v.index {
			v.cluster.net.Send(v.id, other.id, msg)
		}
	}
}

// broadcastEquivocating sends the genuine message to every peer and the
// conflicting twin as an extra message to odd-indexed peers. Sending both
// to the same receivers is what makes the conflict observable — and
// convertible to evidence — rather than a silent split vote.
func (v *Validator) broadcastEquivocating(genuine, twin any) {
	for _, other := range v.cluster.validators {
		if other.index == v.index {
			continue
		}
		v.cluster.net.Send(v.id, other.id, genuine)
		if other.index%2 == 1 {
			v.cluster.net.Send(v.id, other.id, twin)
		}
	}
}

// castVote broadcasts a vote and delivers it to self; a vote-equivocating
// validator also sends a conflicting hash to half its peers.
func (v *Validator) castVote(vote msgVote) {
	if v.byz.EquivocateVotes {
		twin := vote
		twin.PayloadHash[0] ^= 0xFF
		v.broadcastEquivocating(vote, twin)
		v.onVote(vote)
		return
	}
	v.broadcast(vote)
	v.onVote(vote)
}

// catchUp simulates block sync: a validator that sees traffic for a future
// height while its own height has already committed cluster-wide jumps
// forward (a real node would fetch the missed blocks from its peers).
// Without this, a validator whose quorum votes were lost to the WAN stalls
// behind forever and erodes the quorum at the current height — under
// message loss the cluster would grind to a halt within a few blocks.
func (v *Validator) catchUp(msgHeight uint64) {
	if v.decided || msgHeight <= v.height || !v.cluster.committed[v.height] {
		return
	}
	v.startHeight(v.cluster.CommittedHeight() + 1)
}

func (v *Validator) handle(payload any) {
	if v.crashed {
		return
	}
	switch msg := payload.(type) {
	case msgProposal:
		v.catchUp(msg.Height)
		if msg.Height > v.height || (msg.Height == v.height && msg.Round > v.round) {
			v.pending = append(v.pending, msg)
			return
		}
		v.onProposal(msg)
	case msgVote:
		v.catchUp(msg.Height)
		if msg.Height > v.height {
			v.pending = append(v.pending, msg)
			return
		}
		v.onVote(msg)
	}
}

func (v *Validator) onProposal(msg msgProposal) {
	if msg.Height != v.height || msg.Round != v.round {
		return
	}
	// Only the round's legitimate proposer may propose; anything else is a
	// forged injection (record and ignore, never stall).
	if msg.From < 0 || msg.From >= v.n || proposerIndex(msg.Height, msg.Round, v.n) != msg.From {
		v.cluster.inc("byzantine.badproposer")
		return
	}
	h := hashing.Sum(msg.Payload)
	if !v.noteFirstSeen(evKey{proposal: true, height: msg.Height, round: msg.Round, from: msg.From}, h) {
		return
	}
	if v.hasProposal {
		return
	}
	v.proposal = msg.Payload
	v.proposalHash = h
	v.hasProposal = true
	if !v.prevoted {
		v.prevoted = true
		v.castVote(msgVote{
			Kind: votePrevote, Height: v.height, Round: v.round,
			PayloadHash: v.proposalHash, From: v.index,
		})
	}
}

func (v *Validator) onVote(msg msgVote) {
	if msg.Height != v.height {
		return
	}
	if msg.From < 0 || msg.From >= v.n {
		v.cluster.inc("byzantine.badvoter")
		return
	}
	// One vote of each kind per (height, round, sender): a conflicting
	// double-vote is recorded as equivocation evidence and excluded from
	// quorum counting, so a Byzantine voter cannot help two different
	// payloads toward quorum in the same round.
	if !v.noteFirstSeen(evKey{kind: msg.Kind, height: msg.Height, round: msg.Round, from: msg.From}, msg.PayloadHash) {
		return
	}
	key := voteKey{kind: msg.Kind, height: msg.Height, round: msg.Round, hash: msg.PayloadHash}
	set := v.votes[key]
	if set == nil {
		set = make(map[int]bool)
		v.votes[key] = set
	}
	set[msg.From] = true
	quorum := v.cluster.Quorum()

	switch msg.Kind {
	case votePrevote:
		if len(set) >= quorum && v.hasProposal && msg.PayloadHash == v.proposalHash && !v.precommitted {
			v.precommitted = true
			v.castVote(msgVote{
				Kind: votePrecommit, Height: v.height, Round: msg.Round,
				PayloadHash: v.proposalHash, From: v.index,
			})
		}
	case votePrecommit:
		if len(set) >= quorum && v.hasProposal && msg.PayloadHash == v.proposalHash && !v.decided {
			v.decided = true
			v.cluster.commit(v.height, v.proposal)
			height := v.height
			v.cluster.sched.After(v.cluster.cfg.Interval, func() {
				if !v.crashed && v.height == height {
					v.startHeight(height + 1)
				}
			})
		}
	}
}

// WireTamper returns a simnet payload tamper for consensus traffic:
// proposals get their payload bytes corrupted with simnet.DefaultTamper and
// votes get a flipped payload-hash byte; other message kinds pass through
// untouched. Hardened validators must survive both — corrupted proposals
// split the prevote (healed by the round timeout) and corrupted votes look
// like equivocation by the claimed sender (recorded, ignored).
func WireTamper() simnet.PayloadTamper {
	return func(rng *rand.Rand, payload any) (any, bool) {
		switch msg := payload.(type) {
		case msgProposal:
			msg.Payload = simnet.DefaultTamper(rng, msg.Payload)
			return msg, true
		case msgVote:
			msg.PayloadHash[rng.Intn(len(msg.PayloadHash))] ^= byte(1 + rng.Intn(255))
			return msg, true
		}
		return payload, false
	}
}
