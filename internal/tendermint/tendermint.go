// Package tendermint implements the BFT consensus of the Burrow-like chain:
// a propose/prevote/precommit state machine with 2f+1 quorums and rotating
// proposers, executed by real validator processes exchanging messages over
// the simulated WAN (paper §II, §VI).
//
// The implementation captures the protocol structure that the paper's
// evaluation depends on — commit latency is one proposal broadcast plus two
// voting rounds over the inter-region latency distribution, and blocks are
// spaced by a configured interval (5 s in the experiments) — while omitting
// the full Tendermint locking rules needed against equivocating proposers
// (validators here are honest-or-crashed, the failure model the paper's
// cluster exhibits).
package tendermint

import (
	"fmt"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/simclock"
	"scmove/internal/simnet"
)

// App is the replicated application: the chain executor. Propose is invoked
// on the current proposer only; Commit exactly once per height, at the
// simulated time the first validator observes a precommit quorum.
type App interface {
	// Propose returns the payload (an encoded tx batch) for height.
	Propose(height uint64) []byte
	// Commit applies the decided payload for height.
	Commit(height uint64, payload []byte)
}

// Config tunes a validator cluster.
type Config struct {
	// Interval is the wait between a commit and the next proposal (the
	// paper configures 5 s).
	Interval time.Duration
	// ProposeTimeout bounds waiting for a proposal before moving to the
	// next round (and proposer).
	ProposeTimeout time.Duration
	// MaxRoundTimeout caps the per-round timeout growth. Without a cap a
	// long partition drives the round count — and with it the linear
	// timeout — so high that the cluster waits minutes before retrying
	// after the partition heals. Zero means uncapped.
	MaxRoundTimeout time.Duration
}

// DefaultConfig returns the experiment configuration of §VI.
func DefaultConfig() Config {
	return Config{
		Interval:        5 * time.Second,
		ProposeTimeout:  2 * time.Second,
		MaxRoundTimeout: 30 * time.Second,
	}
}

// Cluster is one shard's validator set plus its replicated application.
// Consensus runs on every validator; the deterministic payload execution
// runs once, on the first commit observation (re-execution on the other
// validators would be byte-identical, so the simulation skips it).
type Cluster struct {
	cfg        Config
	sched      *simclock.Scheduler
	net        *simnet.Network
	app        App
	validators []*Validator
	committed  map[uint64]bool

	commitTimes map[uint64]time.Duration
}

// NewCluster creates n validators on the given network nodes and regions.
// Nodes must already be distinct ids; regions assigns each validator's
// placement.
func NewCluster(sched *simclock.Scheduler, net *simnet.Network, app App,
	cfg Config, ids []simnet.NodeID, regions []simnet.Region) (*Cluster, error) {
	if len(ids) == 0 || len(ids) != len(regions) {
		return nil, fmt.Errorf("tendermint: need matching ids and regions, got %d/%d", len(ids), len(regions))
	}
	c := &Cluster{
		cfg:         cfg,
		sched:       sched,
		net:         net,
		app:         app,
		committed:   make(map[uint64]bool),
		commitTimes: make(map[uint64]time.Duration),
	}
	c.validators = make([]*Validator, len(ids))
	for i, id := range ids {
		v := &Validator{
			cluster: c,
			id:      id,
			index:   i,
			n:       len(ids),
			votes:   make(map[voteKey]map[int]bool),
		}
		c.validators[i] = v
		if err := net.Register(id, regions[i], func(from simnet.NodeID, payload any) {
			v.handle(payload)
		}); err != nil {
			return nil, fmt.Errorf("tendermint: register validator %d: %w", i, err)
		}
	}
	return c, nil
}

// Start launches consensus at height 1 on every validator.
func (c *Cluster) Start() {
	for _, v := range c.validators {
		v.startHeight(1)
	}
}

// Quorum returns the vote threshold (2f+1 out of n = 3f+1; for arbitrary n,
// the smallest integer strictly greater than 2n/3).
func (c *Cluster) Quorum() int { return 2*len(c.validators)/3 + 1 }

// CrashValidator stops a validator (it neither sends nor receives).
func (c *Cluster) CrashValidator(i int) {
	c.net.SetNodeDown(c.validators[i].id, true)
	c.validators[i].crashed = true
}

// RestartValidator revives a crashed validator: its volatile consensus
// state (votes, buffered messages) is lost, and it rejoins at the height
// after the highest commit the replicated application knows, catching up
// on the current height via its peers' traffic.
func (c *Cluster) RestartValidator(i int) {
	v := c.validators[i]
	if !v.crashed {
		return
	}
	c.net.SetNodeDown(v.id, false)
	v.crashed = false
	v.votes = make(map[voteKey]map[int]bool)
	v.pending = nil
	v.startHeight(c.CommittedHeight() + 1)
}

// ScheduleCrashRestart crashes validator i at simulated time `at` and
// restarts it at `restartAt` (restartAt ≤ at leaves it down).
func (c *Cluster) ScheduleCrashRestart(i int, at, restartAt time.Duration) {
	c.sched.At(at, func() { c.CrashValidator(i) })
	if restartAt > at {
		c.sched.At(restartAt, func() { c.RestartValidator(i) })
	}
}

// NodeIDs returns each validator's network node id, in validator order —
// fault schedules (partitions, crash-restarts) target these.
func (c *Cluster) NodeIDs() []simnet.NodeID {
	ids := make([]simnet.NodeID, len(c.validators))
	for i, v := range c.validators {
		ids[i] = v.id
	}
	return ids
}

// CommittedHeight returns the highest committed height.
func (c *Cluster) CommittedHeight() uint64 {
	var max uint64
	for h := range c.committed {
		if h > max {
			max = h
		}
	}
	return max
}

// CommitTime returns the simulated time at which a height committed.
func (c *Cluster) CommitTime(height uint64) (time.Duration, bool) {
	t, ok := c.commitTimes[height]
	return t, ok
}

// commit applies the payload once per height.
func (c *Cluster) commit(height uint64, payload []byte) {
	if c.committed[height] {
		return
	}
	c.committed[height] = true
	c.commitTimes[height] = c.sched.Now()
	c.app.Commit(height, payload)
}

// message kinds exchanged between validators.
type msgProposal struct {
	Height  uint64
	Round   int
	Payload []byte
}

type voteKind uint8

const (
	votePrevote voteKind = iota + 1
	votePrecommit
)

type msgVote struct {
	Kind        voteKind
	Height      uint64
	Round       int
	PayloadHash hashing.Hash
	From        int
}

type voteKey struct {
	kind   voteKind
	height uint64
	round  int
	hash   hashing.Hash
}

// Validator is one consensus participant.
type Validator struct {
	cluster *Cluster
	id      simnet.NodeID
	index   int
	n       int
	crashed bool

	height       uint64
	round        int
	proposal     []byte
	proposalHash hashing.Hash
	hasProposal  bool
	prevoted     bool
	precommitted bool
	decided      bool

	votes   map[voteKey]map[int]bool
	pending []any // messages for heights/rounds not yet started
}

// proposerIndex implements round-robin proposer rotation.
func proposerIndex(height uint64, round, n int) int {
	return int((height + uint64(round)) % uint64(n))
}

func (v *Validator) startHeight(h uint64) {
	if v.crashed {
		return
	}
	v.height = h
	v.round = 0
	v.startRound()
}

// drainPending replays buffered messages that have become current.
func (v *Validator) drainPending() {
	pending := v.pending
	v.pending = nil
	for _, msg := range pending {
		v.handle(msg)
	}
}

func (v *Validator) startRound() {
	v.proposal = nil
	v.hasProposal = false
	v.prevoted = false
	v.precommitted = false
	v.decided = false

	if proposerIndex(v.height, v.round, v.n) == v.index {
		payload := v.cluster.app.Propose(v.height)
		msg := msgProposal{Height: v.height, Round: v.round, Payload: payload}
		v.broadcast(msg)
		v.handle(msg) // deliver to self
	}
	// Round timeout: if this round does not decide in time, try the next
	// proposer. Grows linearly with the round to eventually outwait WAN
	// latency under crash faults, capped so liveness recovers promptly
	// after long partitions.
	height, round := v.height, v.round
	timeout := v.cluster.cfg.ProposeTimeout * time.Duration(round+1)
	if max := v.cluster.cfg.MaxRoundTimeout; max > 0 && timeout > max {
		timeout = max
	}
	v.cluster.sched.After(timeout, func() {
		if v.crashed || v.decided || v.height != height || v.round != round {
			return
		}
		v.round++
		v.startRound()
	})
	v.drainPending()
}

func (v *Validator) broadcast(msg any) {
	for _, other := range v.cluster.validators {
		if other.index != v.index {
			v.cluster.net.Send(v.id, other.id, msg)
		}
	}
}

// catchUp simulates block sync: a validator that sees traffic for a future
// height while its own height has already committed cluster-wide jumps
// forward (a real node would fetch the missed blocks from its peers).
// Without this, a validator whose quorum votes were lost to the WAN stalls
// behind forever and erodes the quorum at the current height — under
// message loss the cluster would grind to a halt within a few blocks.
func (v *Validator) catchUp(msgHeight uint64) {
	if v.decided || msgHeight <= v.height || !v.cluster.committed[v.height] {
		return
	}
	v.startHeight(v.cluster.CommittedHeight() + 1)
}

func (v *Validator) handle(payload any) {
	if v.crashed {
		return
	}
	switch msg := payload.(type) {
	case msgProposal:
		v.catchUp(msg.Height)
		if msg.Height > v.height || (msg.Height == v.height && msg.Round > v.round) {
			v.pending = append(v.pending, msg)
			return
		}
		v.onProposal(msg)
	case msgVote:
		v.catchUp(msg.Height)
		if msg.Height > v.height {
			v.pending = append(v.pending, msg)
			return
		}
		v.onVote(msg)
	}
}

func (v *Validator) onProposal(msg msgProposal) {
	if msg.Height != v.height || msg.Round != v.round || v.hasProposal {
		return
	}
	v.proposal = msg.Payload
	v.proposalHash = hashing.Sum(msg.Payload)
	v.hasProposal = true
	if !v.prevoted {
		v.prevoted = true
		vote := msgVote{
			Kind: votePrevote, Height: v.height, Round: v.round,
			PayloadHash: v.proposalHash, From: v.index,
		}
		v.broadcast(vote)
		v.onVote(vote)
	}
}

func (v *Validator) onVote(msg msgVote) {
	if msg.Height != v.height {
		return
	}
	key := voteKey{kind: msg.Kind, height: msg.Height, round: msg.Round, hash: msg.PayloadHash}
	set := v.votes[key]
	if set == nil {
		set = make(map[int]bool)
		v.votes[key] = set
	}
	set[msg.From] = true
	quorum := v.cluster.Quorum()

	switch msg.Kind {
	case votePrevote:
		if len(set) >= quorum && v.hasProposal && msg.PayloadHash == v.proposalHash && !v.precommitted {
			v.precommitted = true
			vote := msgVote{
				Kind: votePrecommit, Height: v.height, Round: msg.Round,
				PayloadHash: v.proposalHash, From: v.index,
			}
			v.broadcast(vote)
			v.onVote(vote)
		}
	case votePrecommit:
		if len(set) >= quorum && v.hasProposal && msg.PayloadHash == v.proposalHash && !v.decided {
			v.decided = true
			v.cluster.commit(v.height, v.proposal)
			height := v.height
			v.cluster.sched.After(v.cluster.cfg.Interval, func() {
				if !v.crashed && v.height == height {
					v.startHeight(height + 1)
				}
			})
		}
	}
}
