// Package rpc is a chain's front door: a minimal JSON-over-HTTP server
// exposing transaction submission, state queries, and receipt lookups.
// Each chain runs its own server on a loopback TCP listener; the load
// generator (cmd/loadgen) and external tools talk to it with plain POSTs.
//
// The protocol is a single endpoint ("/") taking a JSON request object
// with a "method" field — "submit", "query", or "receipt" — and returning
// a JSON response. Bodies are size-bounded and decoded as hostile input:
// bad hex, wrong lengths, and unknown methods are 4xx-level application
// errors, never panics. Per-method wall-clock latencies land in the
// registry's wall histograms (rpc.submit.wall, rpc.query.wall,
// rpc.receipt.wall).
package rpc

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"scmove/internal/chain"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/txpool"
	"scmove/internal/types"
)

// maxRequestBody bounds one request. The largest legitimate payload is a
// Move2 transaction carrying a full contract state proof; 8 MiB of JSON
// (≈4 MiB of tx bytes) leaves ample room while keeping a hostile client
// from ballooning the server.
const maxRequestBody = 8 << 20

// Request is the wire format of one RPC call.
type Request struct {
	// Method selects the call: "submit", "query", or "receipt".
	Method string `json:"method"`
	// Tx is the hex-encoded signed transaction (submit) or the hex
	// transaction id (receipt).
	Tx string `json:"tx,omitempty"`
	// Account is the hex-encoded 20-byte address to read (query).
	Account string `json:"account,omitempty"`
	// Slot optionally names a 32-byte storage key of Account (query).
	Slot string `json:"slot,omitempty"`
	// Height pins a query to a historical committed state inside the
	// backend's retained-root window; nil reads the head state.
	Height *uint64 `json:"height,omitempty"`
}

// Response is the wire format of one RPC reply. Fields beyond Ok/Error are
// method-specific.
type Response struct {
	Ok    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// submit: the transaction id, and whether the pool already knew it
	// (resubmissions are idempontent successes, not errors).
	ID    string `json:"id,omitempty"`
	Known bool   `json:"known,omitempty"`

	// query: chain head at read time, plus the account record or slot value.
	Height  uint64 `json:"height,omitempty"`
	Root    string `json:"root,omitempty"`
	Exists  bool   `json:"exists,omitempty"`
	Nonce   uint64 `json:"nonce,omitempty"`
	Balance string `json:"balance,omitempty"`
	Value   string `json:"value,omitempty"`

	// receipt: inclusion status of a transaction.
	Found   bool   `json:"found,omitempty"`
	Status  uint8  `json:"status,omitempty"`
	GasUsed uint64 `json:"gasUsed,omitempty"`
	TxErr   string `json:"txErr,omitempty"`
}

// Server serves one chain's RPC endpoint.
type Server struct {
	chain *chain.Chain
	reg   *metrics.Registry // nil-safe; wall-clock histograms

	mu   sync.Mutex
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewServer creates a server for c, recording wall-clock latencies into reg
// (nil disables recording).
func NewServer(c *chain.Chain, reg *metrics.Registry) *Server {
	return &Server{chain: c, reg: reg}
}

// Start listens on addr ("" means an ephemeral loopback port) and serves
// until Close. It returns once the listener is bound, so Addr is valid
// immediately after.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	s.mu.Lock()
	s.ln, s.srv, s.done = ln, srv, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		// ErrServerClosed is the normal Close path; anything else would
		// surface through failed client requests.
		_ = srv.Serve(ln)
	}()
	return nil
}

// Addr returns the listener's address (host:port), or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and waits for the serve loop to exit. Safe to call
// twice; the second call reports the already-closed listener error from the
// first, which callers aggregating shutdown errors can ignore via the
// returned http.ErrServerClosed sentinel being absent.
func (s *Server) Close() error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	<-done
	return err
}

// handle dispatches one request.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Response{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, &Response{Error: "request too large"})
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Error: "bad request: " + err.Error()})
		return
	}
	start := time.Now()
	var resp *Response
	switch req.Method {
	case "submit":
		resp = s.submit(&req)
		s.reg.ObserveWall("rpc.submit.wall", time.Since(start))
	case "query":
		resp = s.query(&req)
		s.reg.ObserveWall("rpc.query.wall", time.Since(start))
	case "receipt":
		resp = s.receipt(&req)
		s.reg.ObserveWall("rpc.receipt.wall", time.Since(start))
	default:
		resp = &Response{Error: fmt.Sprintf("unknown method %q", req.Method)}
	}
	status := http.StatusOK
	if !resp.Ok {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// submit decodes and admits one signed transaction. A duplicate of an
// already-pending transaction reports ok with Known set: open-loop load
// generators and retrying relayers must not count idempotent resubmission
// as failure.
func (s *Server) submit(req *Request) *Response {
	raw, err := hex.DecodeString(req.Tx)
	if err != nil {
		return &Response{Error: "submit: tx is not hex: " + err.Error()}
	}
	tx, err := types.DecodeTransaction(raw)
	if err != nil {
		return &Response{Error: "submit: " + err.Error()}
	}
	id := tx.ID()
	if err := s.chain.SubmitTx(tx); err != nil {
		if errors.Is(err, txpool.ErrDuplicate) {
			return &Response{Ok: true, ID: hex.EncodeToString(id[:]), Known: true}
		}
		return &Response{Error: "submit: " + err.Error()}
	}
	return &Response{Ok: true, ID: hex.EncodeToString(id[:])}
}

// query reads an account record — or one storage slot of it — at the head
// state or, with Height set, at a retained historical root.
func (s *Server) query(req *Request) *Response {
	var addr hashing.Address
	if err := decodeFixedHex(req.Account, addr[:]); err != nil {
		return &Response{Error: "query: account: " + err.Error()}
	}
	head, root := s.chain.QueryHead()
	resp := &Response{Ok: true, Height: head.Height, Root: hex.EncodeToString(root[:])}
	if req.Slot != "" {
		var key evm.Word
		if err := decodeFixedHex(req.Slot, key[:]); err != nil {
			return &Response{Error: "query: slot: " + err.Error()}
		}
		var val evm.Word
		if req.Height != nil {
			v, err := s.chain.QueryStorageAt(addr, key, *req.Height)
			if err != nil {
				return &Response{Error: "query: " + err.Error()}
			}
			val, resp.Height = v, *req.Height
		} else {
			val = s.chain.QueryStorage(addr, key)
		}
		resp.Value = hex.EncodeToString(val[:])
		return resp
	}
	if req.Height != nil {
		a, ok, err := s.chain.QueryAccountAt(addr, *req.Height)
		if err != nil {
			return &Response{Error: "query: " + err.Error()}
		}
		resp.Height = *req.Height
		resp.Exists = ok
		if ok {
			bal := a.Balance.Bytes32()
			resp.Nonce, resp.Balance = a.Nonce, hex.EncodeToString(bal[:])
		}
		return resp
	}
	a, ok := s.chain.QueryAccount(addr)
	resp.Exists = ok
	if ok {
		bal := a.Balance.Bytes32()
		resp.Nonce, resp.Balance = a.Nonce, hex.EncodeToString(bal[:])
	}
	return resp
}

// receipt reports whether a transaction committed, and at which height.
func (s *Server) receipt(req *Request) *Response {
	var id hashing.Hash
	if err := decodeFixedHex(req.Tx, id[:]); err != nil {
		return &Response{Error: "receipt: tx: " + err.Error()}
	}
	rec, ok := s.chain.Receipt(id)
	if !ok {
		return &Response{Ok: true, Found: false}
	}
	height, _ := s.chain.TxHeight(id)
	return &Response{
		Ok: true, Found: true, Height: height,
		Status: uint8(rec.Status), GasUsed: rec.GasUsed, TxErr: rec.Err,
	}
}

// decodeFixedHex decodes s into dst, requiring the exact length.
func decodeFixedHex(s string, dst []byte) error {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(raw) != len(dst) {
		return fmt.Errorf("want %d bytes, got %d", len(dst), len(raw))
	}
	copy(dst, raw)
	return nil
}

func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}
