package rpc

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

func testChain(t *testing.T, kp *keys.KeyPair) *chain.Chain {
	t.Helper()
	cfg := chain.Config{
		ChainID:           1,
		TreeKind:          trie.KindMPT,
		Schedule:          evm.EthereumSchedule(),
		BlockGasLimit:     30_000_000,
		MaxBlockTxs:       200,
		ConfirmationDepth: 6,
		PoolLimit:         64,
	}
	c, err := chain.New(cfg, core.NewHeaderStore(), func(db *state.DB) {
		db.AddBalance(kp.Address(), u256.FromUint64(1_000_000_000))
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startServer(t *testing.T, c *chain.Chain, reg *metrics.Registry) *Server {
	t.Helper()
	s := NewServer(c, reg)
	if err := s.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func call(t *testing.T, addr string, req *Request) *Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post("http://"+addr+"/", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestSubmitQueryReceiptRoundTrip(t *testing.T) {
	kp := keys.Deterministic(1)
	c := testChain(t, kp)
	reg := metrics.NewRegistry()
	s := startServer(t, c, reg)

	to := hashing.AddressFromBytes([]byte{0x77})
	tx := &types.Transaction{
		ChainID: 1, Nonce: 0, Kind: types.TxCall, To: to,
		Value: u256.FromUint64(5000), GasLimit: 1_000_000, GasPrice: u256.FromUint64(2),
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}

	sub := call(t, s.Addr(), &Request{Method: "submit", Tx: hex.EncodeToString(tx.Encode())})
	if !sub.Ok || sub.Known {
		t.Fatalf("submit: %+v", sub)
	}
	id := tx.ID()
	if sub.ID != hex.EncodeToString(id[:]) {
		t.Fatalf("submit id %s, want %x", sub.ID, id[:])
	}

	// Resubmission of a pending tx is an idempotent success, flagged known.
	again := call(t, s.Addr(), &Request{Method: "submit", Tx: hex.EncodeToString(tx.Encode())})
	if !again.Ok || !again.Known {
		t.Fatalf("resubmit: %+v", again)
	}

	// Commit a block containing it; the receipt becomes visible.
	c.ApplyBlock(c.ProposeBatch(), 1000, chain.ProposerAddress(1, 0))
	rec := call(t, s.Addr(), &Request{Method: "receipt", Tx: sub.ID})
	if !rec.Ok || !rec.Found || rec.Height != 1 {
		t.Fatalf("receipt: %+v", rec)
	}
	if rec.Status != uint8(types.ReceiptSuccess) {
		t.Fatalf("receipt status %d", rec.Status)
	}

	// Head query sees the transfer.
	q := call(t, s.Addr(), &Request{Method: "query", Account: hex.EncodeToString(to[:])})
	if !q.Ok || !q.Exists || q.Height != 1 {
		t.Fatalf("query: %+v", q)
	}
	if want := u256.FromUint64(5000).Bytes32(); q.Balance != hex.EncodeToString(want[:]) {
		t.Fatalf("balance %s", q.Balance)
	}

	// An unknown receipt reports found=false, not an error.
	miss := call(t, s.Addr(), &Request{Method: "receipt", Tx: hex.EncodeToString(bytes.Repeat([]byte{0xEE}, 32))})
	if !miss.Ok || miss.Found {
		t.Fatalf("missing receipt: %+v", miss)
	}

	// Wall-clock latency histograms recorded for both methods.
	for _, name := range []string{"rpc.submit.wall", "rpc.query.wall", "rpc.receipt.wall"} {
		h := reg.Histogram(name)
		if h == nil || h.Count() == 0 {
			t.Errorf("no wall histogram samples for %s", name)
		}
	}
}

func TestHistoricalQuery(t *testing.T) {
	kp := keys.Deterministic(2)
	c := testChain(t, kp)
	s := startServer(t, c, nil)

	to := hashing.AddressFromBytes([]byte{0x88})
	for nonce := uint64(0); nonce < 3; nonce++ {
		tx := &types.Transaction{
			ChainID: 1, Nonce: nonce, Kind: types.TxCall, To: to,
			Value: u256.FromUint64(100), GasLimit: 1_000_000, GasPrice: u256.FromUint64(2),
		}
		if err := tx.Sign(kp); err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		c.ApplyBlock(c.ProposeBatch(), 1000+nonce, chain.ProposerAddress(1, 0))
	}

	h1 := uint64(1)
	q := call(t, s.Addr(), &Request{Method: "query", Account: hex.EncodeToString(to[:]), Height: &h1})
	if !q.Ok || !q.Exists {
		t.Fatalf("historical query: %+v", q)
	}
	if want := u256.FromUint64(100).Bytes32(); q.Balance != hex.EncodeToString(want[:]) {
		t.Fatalf("balance at height 1: %s", q.Balance)
	}
	head := call(t, s.Addr(), &Request{Method: "query", Account: hex.EncodeToString(to[:])})
	if want := u256.FromUint64(300).Bytes32(); head.Balance != hex.EncodeToString(want[:]) {
		t.Fatalf("balance at head: %s", head.Balance)
	}
	// A height outside the retained window is an application error.
	h99 := uint64(99)
	bad := call(t, s.Addr(), &Request{Method: "query", Account: hex.EncodeToString(to[:]), Height: &h99})
	if bad.Ok {
		t.Fatalf("query at absent height succeeded: %+v", bad)
	}
}

func TestHostileRequests(t *testing.T) {
	kp := keys.Deterministic(3)
	c := testChain(t, kp)
	s := startServer(t, c, nil)

	cases := []*Request{
		{Method: "teleport"},                       // unknown method
		{Method: "submit", Tx: "zz"},               // not hex
		{Method: "submit", Tx: "00ff00"},           // hex but not a tx
		{Method: "query", Account: "abcd"},         // wrong address length
		{Method: "query", Account: ""},             // empty address
		{Method: "receipt", Tx: "1234"},            // wrong hash length
		{Method: "query", Account: "x", Slot: "y"}, // garbage everywhere
	}
	for i, req := range cases {
		resp := call(t, s.Addr(), req)
		if resp.Ok {
			t.Errorf("case %d accepted: %+v", i, resp)
		}
		if resp.Error == "" {
			t.Errorf("case %d: no error message", i)
		}
	}

	// Malformed JSON body.
	httpResp, err := http.Post("http://"+s.Addr()+"/", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", httpResp.StatusCode)
	}

	// GET is refused.
	getResp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", getResp.StatusCode)
	}

	// The server still answers after all that.
	tx := &types.Transaction{
		ChainID: 1, Nonce: 0, Kind: types.TxCall, To: hashing.AddressFromBytes([]byte{9}),
		Value: u256.FromUint64(1), GasLimit: 1_000_000, GasPrice: u256.FromUint64(2),
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if resp := call(t, s.Addr(), &Request{Method: "submit", Tx: hex.EncodeToString(tx.Encode())}); !resp.Ok {
		t.Fatalf("healthy submit after hostile traffic: %+v", resp)
	}
}

func TestCloseIsIdempotentAndFast(t *testing.T) {
	kp := keys.Deterministic(4)
	c := testChain(t, kp)
	s := NewServer(c, nil)
	if err := s.Start(""); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("close took too long")
	}
}
