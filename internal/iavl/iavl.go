// Package iavl implements the authenticated search tree of the
// Burrow/Tendermint-like chain.
//
// Tendermint's IAVL tree is a Merkle-ized AVL tree whose shape depends on
// the order of operations. The Move protocol's completeness check (rebuild
// the moved contract's storage tree and compare roots, §III-E) needs a
// *canonical* structure instead, so this package implements a Merkle-ized
// treap with deterministic priorities (priority = H(key)): the tree shape —
// and therefore the root hash — is a pure function of the key-value set,
// with the same expected O(log n) costs as the AVL original. See DESIGN.md,
// substitutions.
package iavl

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/trie"
)

const (
	tagNode = 0x4e // 'N', node hash domain
	tagPrio = 0x50 // 'P', priority derivation domain
)

type node struct {
	key, value  []byte
	prio        hashing.Hash
	left, right *node

	// hash and enc cache the node hash and its canonical encoding while the
	// subtree is clean, so unchanged subtrees are neither re-encoded nor
	// re-hashed by RootHash or Prove.
	hash  hashing.Hash
	enc   []byte
	clean bool
}

// Tree is a canonical Merkle search tree. Construct with New.
type Tree struct {
	root   *node
	keyLen int
	count  int
}

var _ trie.Tree = (*Tree)(nil)

// New returns an empty tree whose keys are keyLen bytes long.
func New(keyLen int) *Tree {
	if keyLen <= 0 {
		panic("iavl: key length must be positive")
	}
	return &Tree{keyLen: keyLen}
}

// KeyLen returns the fixed key length in bytes.
func (t *Tree) KeyLen() int { return t.keyLen }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.count }

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for n != nil {
		switch bytes.Compare(key, n.key) {
		case 0:
			return n.value, true
		case -1:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, false
}

// GetShared implements trie.SharedReader. The read path is a pure
// comparison walk with no scratch state, so it is Get verbatim.
func (t *Tree) GetShared(key []byte) ([]byte, bool) { return t.Get(key) }

// Set stores value under key.
func (t *Tree) Set(key, value []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	if len(value) == 0 {
		panic("iavl: empty value; use Delete to remove keys")
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	var added bool
	t.root, added = insert(t.root, k, v)
	if added {
		t.count++
	}
	return nil
}

// Delete removes key. Deleting an absent key is a no-op.
func (t *Tree) Delete(key []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	var removed bool
	t.root, removed = remove(t.root, key)
	if removed {
		t.count--
	}
	return nil
}

// RootHash returns the Merkle root; the empty tree hashes to the zero hash.
func (t *Tree) RootHash() hashing.Hash {
	if t.root == nil {
		return hashing.ZeroHash
	}
	return t.root.hashNode()
}

// Iterate visits entries in ascending key order.
func (t *Tree) Iterate(fn func(key, value []byte) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key, n.value) && walk(n.right)
	}
	walk(t.root)
}

func priority(key []byte) hashing.Hash {
	return hashing.SumTagged(tagPrio, key)
}

// higher reports whether priority a wins over b (max-treap ordering).
func higher(a, b hashing.Hash) bool { return bytes.Compare(a[:], b[:]) > 0 }

func insert(n *node, key, value []byte) (*node, bool) {
	if n == nil {
		return &node{key: key, value: value, prio: priority(key)}, true
	}
	n.clean = false
	switch bytes.Compare(key, n.key) {
	case 0:
		n.value = value
		return n, false
	case -1:
		child, added := insert(n.left, key, value)
		n.left = child
		if higher(n.left.prio, n.prio) {
			n = rotateRight(n)
		}
		return n, added
	default:
		child, added := insert(n.right, key, value)
		n.right = child
		if higher(n.right.prio, n.prio) {
			n = rotateLeft(n)
		}
		return n, added
	}
}

func remove(n *node, key []byte) (*node, bool) {
	if n == nil {
		return nil, false
	}
	switch bytes.Compare(key, n.key) {
	case -1:
		child, removed := remove(n.left, key)
		if removed {
			n.clean = false
			n.left = child
		}
		return n, removed
	case 1:
		child, removed := remove(n.right, key)
		if removed {
			n.clean = false
			n.right = child
		}
		return n, removed
	default:
		// Rotate the node down until it is a leaf, preserving heap order.
		return dissolve(n), true
	}
}

// dissolve removes n from its subtree by rotating the higher-priority child
// up until n has at most one child, then splicing it out.
func dissolve(n *node) *node {
	switch {
	case n.left == nil:
		return n.right
	case n.right == nil:
		return n.left
	case higher(n.left.prio, n.right.prio):
		r := rotateRight(n)
		r.clean = false
		r.right = dissolve(r.right)
		return r
	default:
		r := rotateLeft(n)
		r.clean = false
		r.left = dissolve(r.left)
		return r
	}
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.clean = false
	l.clean = false
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.clean = false
	r.clean = false
	return r
}

// appendEncode appends the canonical node encoding to b, byte-identical to
// the codec.Writer format proofs decode: uvarint tag, length-prefixed key
// and value, raw child hashes.
func (n *node) appendEncode(b []byte) []byte {
	b = binary.AppendUvarint(b, tagNode)
	b = binary.AppendUvarint(b, uint64(len(n.key)))
	b = append(b, n.key...)
	b = binary.AppendUvarint(b, uint64(len(n.value)))
	b = append(b, n.value...)
	if n.left == nil {
		b = append(b, hashing.ZeroHash[:]...)
	} else {
		h := n.left.hashNode()
		b = append(b, h[:]...)
	}
	if n.right == nil {
		b = append(b, hashing.ZeroHash[:]...)
	} else {
		h := n.right.hashNode()
		b = append(b, h[:]...)
	}
	return b
}

// encode returns the canonical encoding of a clean node, hashing (and
// caching) it first if needed. The returned slice is the node's cache;
// callers must not retain or mutate it across tree mutations.
func (n *node) encode() []byte {
	if !n.clean {
		n.hashNode()
	}
	return n.enc
}

func (n *node) hashNode() hashing.Hash {
	if n.clean {
		return n.hash
	}
	n.enc = n.appendEncode(n.enc[:0])
	n.hash = hashing.Sum(n.enc)
	n.clean = true
	return n.hash
}
