package iavl

import (
	"bytes"
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// Prove returns an encoded membership proof for key: the canonical encodings
// of every node on the search path from the root to the key's node, with the
// direction taken at every interior step.
func (t *Tree) Prove(key []byte) ([]byte, error) {
	if len(key) != t.keyLen {
		return nil, fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	w := codec.NewWriter(512)
	body := codec.NewWriter(512)
	var steps int
	n := t.root
	for n != nil {
		body.WriteBytes(n.encode())
		steps++
		cmp := bytes.Compare(key, n.key)
		if cmp == 0 {
			w.WriteUvarint(uint64(steps))
			return append(w.Bytes(), body.Bytes()...), nil
		}
		if cmp < 0 {
			body.WriteBool(false) // went left
			n = n.left
		} else {
			body.WriteBool(true) // went right
			n = n.right
		}
	}
	return nil, fmt.Errorf("%w: key absent", trie.ErrInvalidProof)
}

// VerifyProof checks an encoded membership proof against root and returns
// the proven key-value entry (the key/value of the final node on the path).
func VerifyProof(root hashing.Hash, proof []byte) (trie.ProvenEntry, error) {
	r := codec.NewReader(proof)
	steps := r.ReadUvarint()
	if steps == 0 || steps > 1<<16 {
		return trie.ProvenEntry{}, fmt.Errorf("%w: bad step count", trie.ErrInvalidProof)
	}
	expected := root
	for i := uint64(0); i < steps; i++ {
		enc := r.ReadBytes()
		if r.Err() != nil {
			return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, r.Err())
		}
		if hashing.Sum(enc) != expected {
			return trie.ProvenEntry{}, fmt.Errorf("%w: hash mismatch at step %d", trie.ErrInvalidProof, i)
		}
		nr := codec.NewReader(enc)
		if tag := nr.ReadUvarint(); tag != tagNode {
			return trie.ProvenEntry{}, fmt.Errorf("%w: unknown node tag %d", trie.ErrInvalidProof, tag)
		}
		key := nr.ReadBytes()
		value := nr.ReadBytes()
		leftHash := nr.ReadHash()
		rightHash := nr.ReadHash()
		if err := nr.Finish(); err != nil {
			return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
		}
		if i == steps-1 {
			if err := r.Finish(); err != nil {
				return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
			}
			return trie.ProvenEntry{Key: key, Value: value}, nil
		}
		goRight := r.ReadBool()
		if goRight {
			expected = rightHash
		} else {
			expected = leftHash
		}
		if expected.IsZero() {
			return trie.ProvenEntry{}, fmt.Errorf("%w: path descends into empty subtree", trie.ErrInvalidProof)
		}
	}
	return trie.ProvenEntry{}, fmt.Errorf("%w: unreachable", trie.ErrInvalidProof)
}
