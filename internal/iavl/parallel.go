package iavl

import (
	"runtime"
	"sync"

	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// hashFanDepth is how far below the root HashParallel looks for dirty
// subtrees to hand to workers. Four levels of a binary tree yield up to 16
// disjoint tasks; the treap's random priorities keep it balanced enough
// that the frontier carries nearly all of the dirty mass.
const hashFanDepth = 4

// HashParallel returns the Merkle root, hashing dirty subtrees below the
// root on r's workers. It implements trie.ParallelHasher: a node hash is a
// pure function of subtree contents, and the fanned-out subtrees are
// disjoint by construction (left/right descendants of distinct nodes), so
// the result — and every cached node hash — is byte-identical to a serial
// RootHash at any worker count. With a nil runner or a single-CPU process
// it *is* a serial RootHash.
func (t *Tree) HashParallel(r trie.Runner) hashing.Hash {
	if t.root == nil {
		return hashing.ZeroHash
	}
	if r != nil && runtime.GOMAXPROCS(0) > 1 {
		var tasks []*node
		collectDirty(t.root, hashFanDepth, &tasks)
		if len(tasks) > 1 {
			var wg sync.WaitGroup
			wg.Add(len(tasks))
			for _, n := range tasks {
				n := n
				r.Go(func() {
					defer wg.Done()
					n.hashNode()
				})
			}
			wg.Wait()
		}
	}
	// Dirty nodes above the fan-out frontier hash here, finding every
	// frontier subtree already clean.
	return t.root.hashNode()
}

// collectDirty gathers the dirty nodes exactly depth levels below n.
func collectDirty(n *node, depth int, out *[]*node) {
	if n == nil || n.clean {
		return
	}
	if depth == 0 {
		*out = append(*out, n)
		return
	}
	collectDirty(n.left, depth-1, out)
	collectDirty(n.right, depth-1, out)
}
