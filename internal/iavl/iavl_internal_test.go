package iavl

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestTreapInvariants checks the two structural invariants after arbitrary
// operation histories: binary-search-tree order on keys and max-heap order
// on the deterministic priorities. Together they force the canonical shape
// the Move protocol's completeness check relies on.
func TestTreapInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := New(4)
	for op := 0; op < 8000; op++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(600)))
		if rng.Intn(3) == 0 {
			if err := tr.Delete(key[:]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tr.Set(key[:], []byte{byte(op), 1}); err != nil {
				t.Fatal(err)
			}
		}
		if op%500 == 0 {
			checkInvariants(t, tr.root, nil, nil)
		}
	}
	checkInvariants(t, tr.root, nil, nil)
}

func checkInvariants(t *testing.T, n *node, lo, hi []byte) {
	t.Helper()
	if n == nil {
		return
	}
	if lo != nil && bytes.Compare(n.key, lo) <= 0 {
		t.Fatalf("BST order violated: %x <= %x", n.key, lo)
	}
	if hi != nil && bytes.Compare(n.key, hi) >= 0 {
		t.Fatalf("BST order violated: %x >= %x", n.key, hi)
	}
	if n.prio != priority(n.key) {
		t.Fatal("priority must be the deterministic hash of the key")
	}
	for _, child := range []*node{n.left, n.right} {
		if child != nil && higher(child.prio, n.prio) {
			t.Fatalf("heap order violated at %x", n.key)
		}
	}
	checkInvariants(t, n.left, lo, n.key)
	checkInvariants(t, n.right, n.key, hi)
}

func TestHashCacheMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := New(4)
	for op := 0; op < 2000; op++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(128)))
		if rng.Intn(4) == 0 {
			if err := tr.Delete(key[:]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tr.Set(key[:], []byte{byte(op), 3}); err != nil {
				t.Fatal(err)
			}
		}
		if op%100 == 0 {
			cached := tr.RootHash()
			rebuilt := New(4)
			tr.Iterate(func(k, v []byte) bool {
				if err := rebuilt.Set(k, v); err != nil {
					t.Fatal(err)
				}
				return true
			})
			if rebuilt.RootHash() != cached {
				t.Fatalf("op %d: cached root diverges from recomputation", op)
			}
		}
	}
}
