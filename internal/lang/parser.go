package lang

import (
	"fmt"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parse(toks []token) (*contractDecl, error) {
	p := &parser{toks: toks}
	c, err := p.contract()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after contract")
	}
	return c, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, got %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lang: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) contract() (*contractDecl, error) {
	if _, err := p.expect(tokKeyword, "contract"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("contract needs a name")
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	c := &contractDecl{Name: name.text}
	for !p.accept(tokPunct, "}") {
		switch {
		case p.at(tokKeyword, "storage"):
			decl, err := p.storageDecl(len(c.Storage))
			if err != nil {
				return nil, err
			}
			c.Storage = append(c.Storage, decl)
		case p.at(tokKeyword, "func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			c.Funcs = append(c.Funcs, fn)
		default:
			return nil, p.errf("expected storage or func declaration, got %q", p.cur().text)
		}
	}
	return c, nil
}

func (p *parser) storageDecl(slot int) (storageDecl, error) {
	p.next() // storage
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return storageDecl{}, p.errf("storage needs a name")
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return storageDecl{}, err
	}
	t, err := p.typeName()
	if err != nil {
		return storageDecl{}, err
	}
	return storageDecl{Name: name.text, Type: t, Slot: slot}, nil
}

func (p *parser) typeName() (varType, error) {
	t := p.next()
	if t.kind != tokIdent {
		return 0, p.errf("expected a type name, got %q", t.text)
	}
	switch t.text {
	case "uint":
		return typeUint, nil
	case "address":
		return typeAddress, nil
	case "bool":
		return typeBool, nil
	case "map":
		return typeMap, nil
	default:
		return 0, p.errf("unknown type %q", t.text)
	}
}

func (p *parser) funcDecl() (*funcDecl, error) {
	line := p.cur().line
	p.next() // func
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("func needs a name")
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &funcDecl{Name: name.text, Line: line}
	for !p.accept(tokPunct, ")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		param, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("parameter name expected")
		}
		// Optional ': type' annotation (all params are words).
		if p.accept(tokPunct, ":") {
			if _, err := p.typeName(); err != nil {
				return nil, err
			}
		}
		fn.Params = append(fn.Params, param.text)
	}
	if p.accept(tokKeyword, "returns") {
		if _, err := p.typeName(); err != nil {
			return nil, err
		}
		fn.Returns = true
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.accept(tokPunct, "}") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) statement() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "var"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("var needs a name")
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return varStmt{Name: name.text, Expr: e}, nil

	case p.accept(tokKeyword, "return"):
		// A bare return is allowed before '}' or another statement.
		if p.at(tokPunct, "}") {
			return returnStmt{}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return returnStmt{Expr: e}, nil

	case p.accept(tokKeyword, "require"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return requireStmt{Cond: e}, nil

	case p.accept(tokKeyword, "move"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return moveStmt{Target: e}, nil

	case p.accept(tokKeyword, "emit"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("emit needs an event name")
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return emitStmt{Event: name.text, Arg: e}, nil

	case p.accept(tokKeyword, "if"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		thenBlk, err := p.block()
		if err != nil {
			return nil, err
		}
		var elseBlk []stmt
		if p.accept(tokKeyword, "else") {
			elseBlk, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return ifStmt{Cond: cond, Then: thenBlk, Else: elseBlk}, nil

	case p.accept(tokKeyword, "while"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return whileStmt{Cond: cond, Body: body}, nil

	case p.at(tokIdent, ""):
		return p.assignOrCall()

	default:
		return nil, p.errf("unexpected token %q", p.cur().text)
	}
}

// assignOrCall parses `name = e`, `name[k] = e`, or a bare call `name(...)`.
func (p *parser) assignOrCall() (stmt, error) {
	name := p.next()
	switch {
	case p.accept(tokPunct, "="):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return assignStmt{Target: name.text, Expr: e, Line: name.line}, nil
	case p.accept(tokPunct, "["):
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return assignStmt{Target: name.text, Index: idx, Expr: e, Line: name.line}, nil
	case p.at(tokPunct, "("):
		call, err := p.callArgs(name)
		if err != nil {
			return nil, err
		}
		return exprStmt{Call: call}, nil
	default:
		return nil, p.errf("expected assignment or call after %q", name.text)
	}
}

// Expression parsing with precedence climbing.

func (p *parser) expr() (expr, error) { return p.binary(0) }

var precedence = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) binary(minPrec int) (expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := precedence[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = binaryExpr{Op: t.text, L: left, R: right}
	}
}

func (p *parser) unary() (expr, error) {
	if p.accept(tokPunct, "!") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{Op: "!", X: x}, nil
	}
	if p.accept(tokPunct, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return numberExpr{Text: t.text}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return boolExpr{Value: t.text == "true"}, nil
	case t.kind == tokIdent:
		p.next()
		if p.at(tokPunct, "(") {
			return p.callArgs(t)
		}
		if p.accept(tokPunct, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return indexExpr{Map: t.text, Index: idx, Line: t.line}, nil
		}
		return identExpr{Name: t.text, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}

func (p *parser) callArgs(name token) (*callExpr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	call := &callExpr{Name: name.text, Line: name.line}
	for !p.accept(tokPunct, ")") {
		if len(call.Args) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
	}
	return call, nil
}
