// Package lang implements MiniSol, a small Solidity-like language that
// compiles to the EVM bytecode executed by internal/evm — the language-
// level counterpart of the paper's Solidity extension (§III-D): contracts
// declare storage fields and functions, and may implement the Listing-1
// callbacks moveTo(·)/moveFinish(·) with the move(target) builtin lowering
// to OP_MOVE.
//
// Listing 1 of the paper, in MiniSol:
//
//	contract Movable {
//	    storage owner: address
//	    storage movedAt: uint
//
//	    func init() {
//	        require(owner == 0)
//	        owner = sender
//	    }
//	    func moveTo(target: uint) {
//	        require(owner == sender)
//	        require(now - movedAt >= 259200) // 3 days
//	        move(target)
//	    }
//	    func moveFinish() {
//	        movedAt = now
//	    }
//	}
//
// Language summary:
//
//   - types: uint, address, bool, map — all 256-bit words at runtime; map
//     is a word→word mapping stored under hashed slots.
//   - storage fields get slots in declaration order; `m[k]` reads/writes
//     hashed map slots.
//   - statements: var, assignment, if/else, while, return, require(e),
//     move(e), emit Name(e).
//   - expressions: arithmetic, comparisons, logical ops (non-short-circuit),
//     literals, locals, storage reads, internal function calls.
//   - builtins: sender, origin, value, now, self, chainid, location,
//     balance, blocknumber.
//   - calldata: 4-byte selector (first bytes of H(name)) + 32-byte words;
//     the compiled dispatcher also recognizes the protocol-level
//     moveTo/moveFinish encodings used by the chain and the relayer, so
//     MiniSol contracts move with the standard tooling.
//
// Limits (documented, enforced): no recursion (locals live in per-function
// memory frames), no external calls, one return value.
package lang

import (
	"fmt"

	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Compile translates MiniSol source into EVM bytecode.
func Compile(source string) ([]byte, error) {
	toks, err := lex(source)
	if err != nil {
		return nil, err
	}
	contract, err := parse(toks)
	if err != nil {
		return nil, err
	}
	assembly, err := generate(contract)
	if err != nil {
		return nil, err
	}
	code, err := asm.Assemble(assembly)
	if err != nil {
		return nil, fmt.Errorf("lang: internal assembly error: %w", err)
	}
	return code, nil
}

// MustCompile is Compile for statically-known sources; panics on error.
func MustCompile(source string) []byte {
	code, err := Compile(source)
	if err != nil {
		panic(err)
	}
	return code
}

// CompileToAssembly returns the generated assembly text (for inspection and
// tests).
func CompileToAssembly(source string) (string, error) {
	toks, err := lex(source)
	if err != nil {
		return "", err
	}
	contract, err := parse(toks)
	if err != nil {
		return "", err
	}
	return generate(contract)
}

// TopicOf returns the event topic hash emitted by `emit Name(x)`.
func TopicOf(event string) hashing.Hash {
	return hashing.Sum([]byte(event))
}

// Selector returns the 4-byte method selector of a function name.
func Selector(name string) [4]byte {
	h := hashing.Sum([]byte(name))
	var sel [4]byte
	copy(sel[:], h[:4])
	return sel
}

// EncodeCall builds calldata for a compiled contract: selector plus 32-byte
// big-endian words.
func EncodeCall(name string, args ...u256.Int) []byte {
	sel := Selector(name)
	out := make([]byte, 0, 4+32*len(args))
	out = append(out, sel[:]...)
	for _, a := range args {
		w := a.Bytes32()
		out = append(out, w[:]...)
	}
	return out
}
