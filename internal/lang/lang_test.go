package lang_test

import (
	"errors"
	"strings"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/lang"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

const (
	localChain  = hashing.ChainID(1)
	remoteChain = hashing.ChainID(2)
	testGas     = uint64(50_000_000)
)

var (
	caller   = addr(0xAA)
	stranger = addr(0xBB)
	contract = addr(0xCC)
)

func addr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

type env struct {
	db *state.DB
	vm *evm.EVM
}

func newEnv(t *testing.T, code []byte, blockTime uint64) *env {
	t.Helper()
	db, err := state.NewDB(localChain, trie.KindMPT)
	if err != nil {
		t.Fatal(err)
	}
	db.AddBalance(caller, u256.FromUint64(1<<50))
	db.AddBalance(stranger, u256.FromUint64(1<<50))
	db.CreateContract(contract, code)
	block := evm.BlockContext{ChainID: localChain, Number: 5, Time: blockTime, GasLimit: testGas}
	vm := evm.New(evm.EthereumSchedule(), db, block, evm.TxContext{Origin: caller}, nil)
	return &env{db: db, vm: vm}
}

func (e *env) call(t *testing.T, from hashing.Address, input []byte) u256.Int {
	t.Helper()
	ret, _, err := e.vm.Call(from, contract, input, u256.Zero(), testGas)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return u256.FromBytes(ret)
}

func (e *env) callErr(from hashing.Address, input []byte) error {
	_, _, err := e.vm.Call(from, contract, input, u256.Zero(), testGas)
	return err
}

const counterSource = `
// A counter with an owner guard and an event.
contract Counter {
    storage owner: address
    storage count: uint

    func init() {
        require(owner == 0)
        owner = sender
    }
    func increment(by: uint) returns uint {
        require(sender == owner)
        count = count + by
        emit Incremented(count)
        return count
    }
    func get() returns uint {
        return count
    }
}
`

func TestCounterLifecycle(t *testing.T) {
	e := newEnv(t, lang.MustCompile(counterSource), 1000)
	e.call(t, caller, lang.EncodeCall("init"))

	// Double init is refused.
	if err := e.callErr(caller, lang.EncodeCall("init")); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("re-init: want revert, got %v", err)
	}
	got := e.call(t, caller, lang.EncodeCall("increment", u256.FromUint64(5)))
	if !got.Eq(u256.FromUint64(5)) {
		t.Fatalf("increment returned %s", got)
	}
	e.call(t, caller, lang.EncodeCall("increment", u256.FromUint64(7)))
	if got := e.call(t, caller, lang.EncodeCall("get")); !got.Eq(u256.FromUint64(12)) {
		t.Fatalf("get = %s", got)
	}
	// Owner guard.
	if err := e.callErr(stranger, lang.EncodeCall("increment", u256.One())); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("stranger increment: want revert, got %v", err)
	}
	// The event fired with the running count.
	logs := e.db.TakeLogs()
	found := 0
	for _, log := range logs {
		if len(log.Topics) == 1 && log.Topics[0] == lang.TopicOf("Incremented") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Incremented events = %d", found)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
contract Math {
    func sumTo(n: uint) returns uint {
        var total = 0
        var i = 1
        while i <= n {
            total = total + i
            i = i + 1
        }
        return total
    }
    func abs(a: uint, b: uint) returns uint {
        if a > b {
            return a - b
        } else {
            return b - a
        }
    }
    func classify(x: uint) returns uint {
        if x == 0 {
            return 100
        }
        if x % 2 == 0 && x > 10 {
            return 200
        }
        if x == 1 || x == 3 {
            return 300
        }
        return 400
    }
    func mix(x: uint) returns uint {
        return (x + 2) * 3 - x / 2
    }
}
`
	e := newEnv(t, lang.MustCompile(src), 0)
	cases := []struct {
		method string
		args   []u256.Int
		want   uint64
	}{
		{"sumTo", []u256.Int{u256.FromUint64(10)}, 55},
		{"sumTo", []u256.Int{u256.FromUint64(0)}, 0},
		{"abs", []u256.Int{u256.FromUint64(3), u256.FromUint64(9)}, 6},
		{"abs", []u256.Int{u256.FromUint64(9), u256.FromUint64(3)}, 6},
		{"classify", []u256.Int{u256.FromUint64(0)}, 100},
		{"classify", []u256.Int{u256.FromUint64(12)}, 200},
		{"classify", []u256.Int{u256.FromUint64(3)}, 300},
		{"classify", []u256.Int{u256.FromUint64(7)}, 400},
		{"mix", []u256.Int{u256.FromUint64(10)}, 31},
	}
	for _, tc := range cases {
		got := e.call(t, caller, lang.EncodeCall(tc.method, tc.args...))
		if !got.Eq(u256.FromUint64(tc.want)) {
			t.Errorf("%s(%v) = %s, want %d", tc.method, tc.args, got, tc.want)
		}
	}
}

func TestInternalCalls(t *testing.T) {
	src := `
contract Calls {
    func double(x: uint) returns uint {
        return x * 2
    }
    func quadruple(x: uint) returns uint {
        return double(double(x))
    }
    func addBoth(a: uint, b: uint) returns uint {
        return double(a) + double(b)
    }
}
`
	e := newEnv(t, lang.MustCompile(src), 0)
	if got := e.call(t, caller, lang.EncodeCall("quadruple", u256.FromUint64(3))); !got.Eq(u256.FromUint64(12)) {
		t.Fatalf("quadruple(3) = %s", got)
	}
	if got := e.call(t, caller, lang.EncodeCall("addBoth", u256.FromUint64(2), u256.FromUint64(5))); !got.Eq(u256.FromUint64(14)) {
		t.Fatalf("addBoth(2,5) = %s", got)
	}
}

const tokenSource = `
// A minimal map-based token.
contract Token {
    storage owner: address
    storage balances: map
    storage total: uint

    func init() {
        require(owner == 0)
        owner = sender
    }
    func mint(to: address, amount: uint) {
        require(sender == owner)
        balances[to] = balances[to] + amount
        total = total + amount
    }
    func transfer(to: address, amount: uint) {
        require(balances[sender] >= amount)
        balances[sender] = balances[sender] - amount
        balances[to] = balances[to] + amount
    }
    func balanceOf(who: address) returns uint {
        return balances[who]
    }
    func totalSupply() returns uint {
        return total
    }
}
`

func TestMapToken(t *testing.T) {
	e := newEnv(t, lang.MustCompile(tokenSource), 0)
	e.call(t, caller, lang.EncodeCall("init"))

	callerWord := u256.FromBytes(caller[:])
	strangerWord := u256.FromBytes(stranger[:])

	e.call(t, caller, lang.EncodeCall("mint", callerWord, u256.FromUint64(1000)))
	if got := e.call(t, caller, lang.EncodeCall("balanceOf", callerWord)); !got.Eq(u256.FromUint64(1000)) {
		t.Fatalf("balance = %s", got)
	}
	e.call(t, caller, lang.EncodeCall("transfer", strangerWord, u256.FromUint64(300)))
	if got := e.call(t, caller, lang.EncodeCall("balanceOf", strangerWord)); !got.Eq(u256.FromUint64(300)) {
		t.Fatalf("stranger balance = %s", got)
	}
	if got := e.call(t, caller, lang.EncodeCall("balanceOf", callerWord)); !got.Eq(u256.FromUint64(700)) {
		t.Fatalf("caller balance = %s", got)
	}
	if got := e.call(t, caller, lang.EncodeCall("totalSupply")); !got.Eq(u256.FromUint64(1000)) {
		t.Fatalf("total = %s", got)
	}
	// Overdraft reverts.
	if err := e.callErr(stranger, lang.EncodeCall("transfer", callerWord, u256.FromUint64(999))); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("overdraft: want revert, got %v", err)
	}
	// Non-owner cannot mint.
	if err := e.callErr(stranger, lang.EncodeCall("mint", strangerWord, u256.One())); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("mint guard: want revert, got %v", err)
	}
}

// listing1Source is Listing 1 of the paper, in MiniSol.
const listing1Source = `
contract Movable {
    storage owner: address
    storage movedAt: uint
    storage payload: uint

    func init(data: uint) {
        require(owner == 0)
        owner = sender
        payload = data
    }
    func moveTo(target: uint) {
        require(owner == sender)
        require(now - movedAt >= 259200) // 3 days
        move(target)
    }
    func moveFinish() {
        movedAt = now
    }
    func data() returns uint {
        return payload
    }
}
`

func TestListing1MovableContract(t *testing.T) {
	e := newEnv(t, lang.MustCompile(listing1Source), 300_000)
	e.call(t, caller, lang.EncodeCall("init", u256.FromUint64(777)))

	// The protocol-level moveTo encoding reaches the compiled guard: a
	// stranger cannot move it.
	if err := e.callErr(stranger, moveToInput(remoteChain)); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("stranger moveTo: want revert, got %v", err)
	}
	// The owner can.
	if err := e.callErr(caller, moveToInput(remoteChain)); err != nil {
		t.Fatalf("owner moveTo: %v", err)
	}
	if e.db.GetLocation(contract) != remoteChain {
		t.Fatal("contract must be locked towards chain 2")
	}
	if e.db.GetMoveNonce(contract) != 1 {
		t.Fatal("move nonce must bump")
	}
	// Reads still work through the lock.
	ret, _, err := e.vm.StaticCall(caller, contract, lang.EncodeCall("data"), testGas)
	if err != nil || !u256.FromBytes(ret).Eq(u256.FromUint64(777)) {
		t.Fatalf("read through lock: %x err=%v", ret, err)
	}
}

func TestListing1ResidencyGuard(t *testing.T) {
	// moveFinish stamps movedAt; moving again before the residency elapses
	// reverts.
	e := newEnv(t, lang.MustCompile(listing1Source), 1000)
	e.call(t, caller, lang.EncodeCall("init", u256.One()))
	// Simulate a fresh arrival: the chain calls moveFinish.
	if err := e.callErr(caller, moveFinishInput()); err != nil {
		t.Fatalf("moveFinish: %v", err)
	}
	// now(1000) - movedAt(1000) = 0 < 3 days.
	if err := e.callErr(caller, moveToInput(remoteChain)); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("residency: want revert, got %v", err)
	}
}

func moveToInput(target hashing.ChainID) []byte {
	out := append([]byte("__move_to__"), target.Bytes()...)
	return out
}

func moveFinishInput() []byte { return []byte("__move_finish__") }

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown ident", `contract C { func f() returns uint { return nope } }`, "unknown identifier"},
		{"unknown func", `contract C { func f() { g() } }`, "unknown function"},
		{"arity", `contract C { func g(x: uint) {} func f() { g() } }`, "takes 1 arguments"},
		{"recursion", `contract C { func f() { f() } }`, "recursion"},
		{"dup storage", `contract C { storage x: uint storage x: uint }`, "duplicate storage"},
		{"dup func", `contract C { func f() {} func f() {} }`, "duplicate function"},
		{"map without index", `contract C { storage m: map func f() returns uint { return m } }`, "needs an index"},
		{"index non-map", `contract C { storage x: uint func f() returns uint { return x[1] } }`, "not a map"},
		{"bad moveTo arity", `contract C { func moveTo() {} }`, "exactly one parameter"},
		{"bad moveFinish arity", `contract C { func moveFinish(x: uint) {} }`, "no parameters"},
		{"shadowing", `contract C { storage x: uint func f() { var x = 1 } }`, "shadows"},
		{"dup local", `contract C { func f() { var a = 1 var a = 2 } }`, "already declared"},
		{"bad token", `contract C { func f() { var a = 1 $ } }`, "unexpected character"},
		{"bad syntax", `contract C { func f() { if } }`, "unexpected token"},
		{"unknown type", `contract C { storage x: float }`, "unknown type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lang.Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled, want error %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestSelectorAndEncodeCall(t *testing.T) {
	data := lang.EncodeCall("transfer", u256.FromUint64(5))
	if len(data) != 36 {
		t.Fatalf("calldata length = %d", len(data))
	}
	sel := lang.Selector("transfer")
	if string(data[:4]) != string(sel[:]) {
		t.Fatal("selector prefix mismatch")
	}
	if lang.Selector("a") == lang.Selector("b") {
		t.Fatal("selectors must differ")
	}
}

func TestCompileToAssemblyInspectable(t *testing.T) {
	asmText, err := lang.CompileToAssembly(counterSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"@fn_increment", "@finish:", "SSTORE", "MiniSol dispatcher"} {
		if !strings.Contains(asmText, want) {
			t.Fatalf("assembly missing %q", want)
		}
	}
}
