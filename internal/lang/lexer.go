package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokKeyword
	tokPunct
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
}

var keywords = map[string]bool{
	"contract": true, "storage": true, "func": true, "returns": true,
	"var": true, "return": true, "require": true, "move": true,
	"emit": true, "if": true, "else": true, "while": true,
	"true": true, "false": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"{", "}", "(", ")", "[", "]", ":", ",", "=", "+", "-", "*", "/", "%",
	"<", ">", "!",
}

// lex tokenizes MiniSol source. Comments run from // to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			text := src[start:i]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && (isIdentPart(rune(src[i]))) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], line: line})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("lang: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", line: line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == 'x' // hex literals lex as numbers via digit start
}
