package lang

import (
	"fmt"
	"math/big"
	"strings"
)

// Memory layout of compiled contracts:
//
//	0x00 - 0x3f   scratch (map slot hashing, event payloads, return value)
//	0x80 + i*0x400  locals frame of function i (no recursion: frames are
//	                statically assigned, one per function)
const (
	scratchKey   = 0x00 // map slot index goes here
	scratchVal   = 0x20 // map key goes here
	frameBase    = 0x80
	frameSize    = 0x400
	maxLocals    = frameSize / 32
	maxFunctions = 256
)

// generate lowers a parsed contract to assembly text for internal/evm/asm.
func generate(c *contractDecl) (string, error) {
	g := &generator{
		contract: c,
		storage:  make(map[string]storageDecl, len(c.Storage)),
		funcs:    make(map[string]*funcDecl, len(c.Funcs)),
		fnIndex:  make(map[string]int, len(c.Funcs)),
	}
	for _, s := range c.Storage {
		if _, dup := g.storage[s.Name]; dup {
			return "", fmt.Errorf("lang: duplicate storage field %q", s.Name)
		}
		g.storage[s.Name] = s
	}
	if len(c.Funcs) > maxFunctions {
		return "", fmt.Errorf("lang: too many functions (%d)", len(c.Funcs))
	}
	for i, fn := range c.Funcs {
		if _, dup := g.funcs[fn.Name]; dup {
			return "", fmt.Errorf("lang: duplicate function %q", fn.Name)
		}
		g.funcs[fn.Name] = fn
		g.fnIndex[fn.Name] = i
	}
	if fn, ok := g.funcs["moveTo"]; ok && len(fn.Params) != 1 {
		return "", fmt.Errorf("lang: moveTo must take exactly one parameter")
	}
	if fn, ok := g.funcs["moveFinish"]; ok && len(fn.Params) != 0 {
		return "", fmt.Errorf("lang: moveFinish must take no parameters")
	}
	if err := g.dispatcher(); err != nil {
		return "", err
	}
	for _, fn := range c.Funcs {
		if err := g.function(fn); err != nil {
			return "", err
		}
	}
	return g.out.String(), nil
}

type generator struct {
	contract *contractDecl
	storage  map[string]storageDecl
	funcs    map[string]*funcDecl
	fnIndex  map[string]int

	out      strings.Builder
	labelSeq int

	// per-function state
	fn     *funcDecl
	locals map[string]int
	frame  int
}

func (g *generator) emit(line string) { g.out.WriteString(line + "\n") }

func (g *generator) emitf(format string, args ...any) {
	fmt.Fprintf(&g.out, format+"\n", args...)
}

func (g *generator) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("@%s_%d", prefix, g.labelSeq)
}

func fnLabel(name string) string { return "@fn_" + name }

// push32 emits a full-width push of a constant.
func (g *generator) push32(v *big.Int) {
	g.emitf("PUSH32 0x%064x", v)
}

// dispatcher emits the calldata decoder: the protocol-level moveTo and
// moveFinish encodings (recognized by their unique lengths, 19 and 15
// bytes — ordinary calls are 4 + 32n bytes), then the 4-byte selector
// switch, then a plain-transfer fallback.
func (g *generator) dispatcher() error {
	g.emit("; MiniSol dispatcher")
	if _, ok := g.funcs["moveFinish"]; ok {
		g.emit("CALLDATASIZE PUSH1 15 EQ PUSH @disp_movefinish JUMPI")
	}
	if _, ok := g.funcs["moveTo"]; ok {
		g.emit("CALLDATASIZE PUSH1 19 EQ PUSH @disp_moveto JUMPI")
	}
	g.emit("PUSH1 0 CALLDATALOAD PUSH1 224 SHR ; selector")
	for _, fn := range g.contract.Funcs {
		sel := Selector(fn.Name)
		g.emitf("DUP1 PUSH4 0x%02x%02x%02x%02x EQ PUSH @disp_%s JUMPI",
			sel[0], sel[1], sel[2], sel[3], fn.Name)
	}
	g.emit("POP STOP ; fallback: accept plain transfers")

	if _, ok := g.funcs["moveFinish"]; ok {
		g.emit("@disp_movefinish: JUMPDEST")
		g.emit("PUSH @finish")
		g.emitf("PUSH %s JUMP", fnLabel("moveFinish"))
	}
	if _, ok := g.funcs["moveTo"]; ok {
		g.emit("@disp_moveto: JUMPDEST")
		g.emit("PUSH @finish")
		// target = last 8 bytes of the 19-byte payload.
		g.emit("PUSH1 0 CALLDATALOAD PUSH1 104 SHR PUSH8 0xFFFFFFFFFFFFFFFF AND")
		g.emitf("PUSH %s JUMP", fnLabel("moveTo"))
	}
	for _, fn := range g.contract.Funcs {
		g.emitf("@disp_%s: JUMPDEST", fn.Name)
		g.emit("POP ; selector")
		g.emit("PUSH @finish")
		// Arguments pushed last-first so arg1 ends on top.
		for i := len(fn.Params); i >= 1; i-- {
			g.emitf("PUSH2 %d CALLDATALOAD", 4+32*(i-1))
		}
		g.emitf("PUSH %s JUMP", fnLabel(fn.Name))
	}
	g.emit("@finish: JUMPDEST ; [result]")
	g.emit("PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN")
	g.emit("@revert: JUMPDEST")
	g.emit("PUSH1 0 PUSH1 0 REVERT")
	return nil
}

// function emits one function body. Calling convention: stack on entry is
// [returnAddress, paramN .. param1(top)]; the function jumps back with a
// single result word on top of the return address.
func (g *generator) function(fn *funcDecl) error {
	g.fn = fn
	g.locals = make(map[string]int, len(fn.Params)+8)
	g.frame = frameBase + g.fnIndex[fn.Name]*frameSize

	g.emitf("%s: JUMPDEST ; func %s", fnLabel(fn.Name), fn.Name)
	for _, p := range fn.Params {
		idx, err := g.newLocal(p, fn.Line)
		if err != nil {
			return err
		}
		g.emitf("PUSH2 %d MSTORE ; param %s", g.localOffset(idx), p)
	}
	if err := g.stmts(fn.Body); err != nil {
		return err
	}
	// Implicit `return 0`.
	g.emit("PUSH1 0 SWAP1 JUMP")
	return nil
}

func (g *generator) newLocal(name string, line int) (int, error) {
	if _, dup := g.locals[name]; dup {
		return 0, fmt.Errorf("lang: line %d: %q already declared", line, name)
	}
	if _, clash := g.storage[name]; clash {
		return 0, fmt.Errorf("lang: line %d: %q shadows a storage field", line, name)
	}
	idx := len(g.locals)
	if idx >= maxLocals {
		return 0, fmt.Errorf("lang: line %d: too many locals in %q", line, g.fn.Name)
	}
	g.locals[name] = idx
	return idx, nil
}

func (g *generator) localOffset(idx int) int { return g.frame + 32*idx }

func (g *generator) stmts(list []stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) stmt(s stmt) error {
	switch s := s.(type) {
	case varStmt:
		if err := g.expr(s.Expr); err != nil {
			return err
		}
		idx, err := g.newLocal(s.Name, g.fn.Line)
		if err != nil {
			return err
		}
		g.emitf("PUSH2 %d MSTORE ; var %s", g.localOffset(idx), s.Name)
		return nil

	case assignStmt:
		if s.Index != nil {
			decl, ok := g.storage[s.Target]
			if !ok || decl.Type != typeMap {
				return fmt.Errorf("lang: line %d: %q is not a map", s.Line, s.Target)
			}
			if err := g.expr(s.Expr); err != nil {
				return err
			}
			if err := g.mapSlot(decl, s.Index); err != nil {
				return err
			}
			g.emit("SSTORE")
			return nil
		}
		if err := g.expr(s.Expr); err != nil {
			return err
		}
		if idx, ok := g.locals[s.Target]; ok {
			g.emitf("PUSH2 %d MSTORE ; %s =", g.localOffset(idx), s.Target)
			return nil
		}
		if decl, ok := g.storage[s.Target]; ok {
			if decl.Type == typeMap {
				return fmt.Errorf("lang: line %d: map %q needs an index", s.Line, s.Target)
			}
			g.emitf("PUSH1 %d SSTORE ; storage %s =", decl.Slot, s.Target)
			return nil
		}
		return fmt.Errorf("lang: line %d: unknown variable %q", s.Line, s.Target)

	case returnStmt:
		if s.Expr != nil {
			if err := g.expr(s.Expr); err != nil {
				return err
			}
		} else {
			g.emit("PUSH1 0")
		}
		g.emit("SWAP1 JUMP ; return")
		return nil

	case requireStmt:
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.emit("ISZERO PUSH @revert JUMPI ; require")
		return nil

	case moveStmt:
		if err := g.expr(s.Target); err != nil {
			return err
		}
		g.emit("MOVE")
		return nil

	case emitStmt:
		if err := g.expr(s.Arg); err != nil {
			return err
		}
		g.emitf("PUSH1 %d MSTORE", scratchVal)
		g.emitTopic(s.Event)
		g.emitf("PUSH1 32 PUSH1 %d LOG1 ; emit %s", scratchVal, s.Event)
		return nil

	case ifStmt:
		elseL, endL := g.label("else"), g.label("endif")
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.emitf("ISZERO PUSH %s JUMPI", elseL)
		if err := g.stmts(s.Then); err != nil {
			return err
		}
		g.emitf("PUSH %s JUMP", endL)
		g.emitf("%s: JUMPDEST", elseL)
		if err := g.stmts(s.Else); err != nil {
			return err
		}
		g.emitf("%s: JUMPDEST", endL)
		return nil

	case whileStmt:
		loopL, endL := g.label("loop"), g.label("endloop")
		g.emitf("%s: JUMPDEST", loopL)
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.emitf("ISZERO PUSH %s JUMPI", endL)
		if err := g.stmts(s.Body); err != nil {
			return err
		}
		g.emitf("PUSH %s JUMP", loopL)
		g.emitf("%s: JUMPDEST", endL)
		return nil

	case exprStmt:
		if err := g.call(s.Call); err != nil {
			return err
		}
		g.emit("POP ; discard result")
		return nil

	default:
		return fmt.Errorf("lang: unhandled statement %T", s)
	}
}

// emitTopic pushes the full event topic hash.
func (g *generator) emitTopic(event string) {
	h := TopicOf(event)
	g.emitf("PUSH32 0x%x", h[:])
}

// mapSlot computes the storage slot of decl[index] on the stack:
// H(slotIndex || key) via the scratch area.
func (g *generator) mapSlot(decl storageDecl, index expr) error {
	if err := g.expr(index); err != nil {
		return err
	}
	g.emitf("PUSH1 %d MSTORE ; map key", scratchVal)
	g.emitf("PUSH1 %d PUSH1 %d MSTORE ; map slot index", decl.Slot, scratchKey)
	g.emitf("PUSH1 64 PUSH1 %d SHA3", scratchKey)
	return nil
}

var builtinOps = map[string]string{
	"sender":      "CALLER",
	"origin":      "ORIGIN",
	"value":       "CALLVALUE",
	"now":         "TIMESTAMP",
	"self":        "ADDRESS",
	"chainid":     "CHAINID",
	"location":    "LOCATION",
	"balance":     "SELFBALANCE",
	"blocknumber": "NUMBER",
	"gasleft":     "GAS",
}

func (g *generator) expr(e expr) error {
	switch e := e.(type) {
	case numberExpr:
		v, ok := parseNumber(e.Text)
		if !ok {
			return fmt.Errorf("lang: invalid number literal %q", e.Text)
		}
		g.push32(v)
		return nil

	case boolExpr:
		if e.Value {
			g.emit("PUSH1 1")
		} else {
			g.emit("PUSH1 0")
		}
		return nil

	case identExpr:
		if idx, ok := g.locals[e.Name]; ok {
			g.emitf("PUSH2 %d MLOAD ; %s", g.localOffset(idx), e.Name)
			return nil
		}
		if decl, ok := g.storage[e.Name]; ok {
			if decl.Type == typeMap {
				return fmt.Errorf("lang: line %d: map %q needs an index", e.Line, e.Name)
			}
			g.emitf("PUSH1 %d SLOAD ; %s", decl.Slot, e.Name)
			return nil
		}
		if op, ok := builtinOps[e.Name]; ok {
			g.emit(op)
			return nil
		}
		return fmt.Errorf("lang: line %d: unknown identifier %q", e.Line, e.Name)

	case indexExpr:
		decl, ok := g.storage[e.Map]
		if !ok || decl.Type != typeMap {
			return fmt.Errorf("lang: line %d: %q is not a map", e.Line, e.Map)
		}
		if err := g.mapSlot(decl, e.Index); err != nil {
			return err
		}
		g.emit("SLOAD")
		return nil

	case *callExpr:
		return g.call(e)

	case unaryExpr:
		if err := g.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case "!":
			g.emit("ISZERO")
		case "-":
			g.emit("PUSH1 0 SUB")
		default:
			return fmt.Errorf("lang: unknown unary operator %q", e.Op)
		}
		return nil

	case binaryExpr:
		return g.binary(e)

	default:
		return fmt.Errorf("lang: unhandled expression %T", e)
	}
}

// binary evaluates R then L, so the left operand is on top — matching the
// EVM's top-then-below operand order for non-commutative opcodes.
func (g *generator) binary(e binaryExpr) error {
	// Logical operators normalize both sides to 0/1.
	if e.Op == "&&" || e.Op == "||" {
		if err := g.expr(e.R); err != nil {
			return err
		}
		g.emit("ISZERO ISZERO")
		if err := g.expr(e.L); err != nil {
			return err
		}
		g.emit("ISZERO ISZERO")
		if e.Op == "&&" {
			g.emit("AND")
		} else {
			g.emit("OR")
		}
		return nil
	}
	if err := g.expr(e.R); err != nil {
		return err
	}
	if err := g.expr(e.L); err != nil {
		return err
	}
	ops := map[string]string{
		"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
		"==": "EQ", "!=": "EQ ISZERO",
		"<": "LT", ">": "GT", "<=": "GT ISZERO", ">=": "LT ISZERO",
	}
	op, ok := ops[e.Op]
	if !ok {
		return fmt.Errorf("lang: unknown operator %q", e.Op)
	}
	g.emit(op)
	return nil
}

// call emits an internal function call: push the return label and the
// arguments (last first), jump to the function, land with the result.
func (g *generator) call(e *callExpr) error {
	fn, ok := g.funcs[e.Name]
	if !ok {
		return fmt.Errorf("lang: line %d: unknown function %q", e.Line, e.Name)
	}
	if len(e.Args) != len(fn.Params) {
		return fmt.Errorf("lang: line %d: %s takes %d arguments, got %d",
			e.Line, e.Name, len(fn.Params), len(e.Args))
	}
	if fn.Name == g.fn.Name {
		return fmt.Errorf("lang: line %d: recursion is not supported (%s calls itself)", e.Line, e.Name)
	}
	ret := g.label("ret")
	g.emitf("PUSH %s ; return address", ret)
	for i := len(e.Args) - 1; i >= 0; i-- {
		if err := g.expr(e.Args[i]); err != nil {
			return err
		}
	}
	g.emitf("PUSH %s JUMP", fnLabel(e.Name))
	g.emitf("%s: JUMPDEST", ret)
	return nil
}

// parseNumber accepts decimal and 0x-prefixed hex literals up to 256 bits.
func parseNumber(text string) (*big.Int, bool) {
	v := new(big.Int)
	var ok bool
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		_, ok = v.SetString(text[2:], 16)
	} else {
		_, ok = v.SetString(text, 10)
	}
	if !ok || v.Sign() < 0 || v.BitLen() > 256 {
		return nil, false
	}
	return v, true
}
