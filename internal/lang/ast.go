package lang

// AST node definitions.

type varType uint8

const (
	typeUint varType = iota + 1
	typeAddress
	typeBool
	typeMap
)

type contractDecl struct {
	Name    string
	Storage []storageDecl
	Funcs   []*funcDecl
}

type storageDecl struct {
	Name string
	Type varType
	Slot int
}

type funcDecl struct {
	Name    string
	Params  []string
	Returns bool
	Body    []stmt
	Line    int
}

// Statements.

type stmt interface{ stmtNode() }

type varStmt struct {
	Name string
	Expr expr
}

type assignStmt struct {
	// Target is a local or storage name; Index non-nil for map writes.
	Target string
	Index  expr
	Expr   expr
	Line   int
}

type returnStmt struct {
	Expr expr // nil returns zero
}

type requireStmt struct {
	Cond expr
}

type moveStmt struct {
	Target expr
}

type emitStmt struct {
	Event string
	Arg   expr
}

type ifStmt struct {
	Cond expr
	Then []stmt
	Else []stmt
}

type whileStmt struct {
	Cond expr
	Body []stmt
}

// exprStmt evaluates a call for its side effects, discarding the result.
type exprStmt struct {
	Call *callExpr
}

func (varStmt) stmtNode()     {}
func (assignStmt) stmtNode()  {}
func (returnStmt) stmtNode()  {}
func (requireStmt) stmtNode() {}
func (moveStmt) stmtNode()    {}
func (emitStmt) stmtNode()    {}
func (ifStmt) stmtNode()      {}
func (whileStmt) stmtNode()   {}
func (exprStmt) stmtNode()    {}

// Expressions.

type expr interface{ exprNode() }

type numberExpr struct {
	Text string
}

type boolExpr struct {
	Value bool
}

// identExpr resolves to a local, a storage field, or a builtin.
type identExpr struct {
	Name string
	Line int
}

type indexExpr struct {
	Map   string
	Index expr
	Line  int
}

type callExpr struct {
	Name string
	Args []expr
	Line int
}

type unaryExpr struct {
	Op string
	X  expr
}

type binaryExpr struct {
	Op   string
	L, R expr
}

func (numberExpr) exprNode() {}
func (boolExpr) exprNode()   {}
func (identExpr) exprNode()  {}
func (indexExpr) exprNode()  {}
func (callExpr) exprNode()   {}
func (unaryExpr) exprNode()  {}
func (binaryExpr) exprNode() {}
