package contracts

import (
	"encoding/binary"
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
)

// Store is the state-transfer benchmark contract of the IBC experiments
// (§VIII, "State 1 / State 10 / State 100"): a movable contract holding N
// 32-byte state variables and nothing else, so the cost of moving it
// isolates the state-size dependence of Move2.
type Store struct {
	// Residency guards repeated moves (zero for the experiments).
	Residency uint64
}

var _ evm.Native = Store{}

// StoreName is the registry name of the Store contract.
const StoreName = "Store"

// Name implements evm.Native.
func (Store) Name() string { return StoreName }

// CodeSize emulates a small Solidity storage contract.
func (Store) CodeSize() int { return 600 }

// storeSlot is the i-th state variable's storage key.
func storeSlot(i uint64) evm.Word {
	var w evm.Word
	w[0] = 0x01
	binary.BigEndian.PutUint64(w[24:], i)
	return w
}

// StoreConstructorArgs builds OnCreate args: the owner and the number of
// 32-byte variables to populate.
func StoreConstructorArgs(owner hashing.Address, count uint64) []byte {
	return EncodeCall("init", ArgAddress(owner), ArgUint(count))
}

// OnCreate populates count state variables with derived non-zero values.
func (s Store) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: store constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 2); err != nil {
		return err
	}
	owner, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	count, err := AsUint(argv[1])
	if err != nil {
		return err
	}
	if err := SetOwner(call, owner); err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var value evm.Word
		slot := storeSlot(i)
		h := hashing.Sum(slot[:])
		copy(value[:], h[:])
		if err := call.SetStorage(storeSlot(i), value); err != nil {
			return err
		}
	}
	return nil
}

// Run dispatches Store methods: get(i), set(i, value), count via iteration
// is not provided (the contract is a benchmark fixture).
func (s Store) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	if handled, err := (Movable{MinResidency: s.Residency}).Dispatch(call, input); handled {
		return nil, err
	}
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "get":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		i, err := AsUint(args[0])
		if err != nil {
			return nil, err
		}
		v, err := call.GetStorage(storeSlot(i))
		if err != nil {
			return nil, err
		}
		return v[:], nil
	case "set":
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		i, err := AsUint(args[0])
		if err != nil {
			return nil, err
		}
		v, err := AsWord(args[1])
		if err != nil {
			return nil, err
		}
		return nil, call.SetStorage(storeSlot(i), v)
	default:
		return nil, fmt.Errorf("%w: Store.%s", ErrUnknownCall, method)
	}
}
