package contracts_test

import (
	"testing"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
)

func setupSwap(t *testing.T) (h *harness, swap, catA, catB hashing.Address) {
	t.Helper()
	h = newHarness(t, 3)
	owner := h.users[0]
	registry := h.deploy(1, owner, contracts.KittyRegistryName,
		contracts.KittyRegistryConstructorArgs(owner.Address()), 0)
	swap = h.deploy(1, owner, contracts.SwapName, nil, 0)

	mint := func(genes byte, to hashing.Address) hashing.Address {
		var g [32]byte
		g[31] = genes
		rec := h.call(1, owner, registry, contracts.EncodeCall("createPromoKitty",
			contracts.ArgWord(g), contracts.ArgAddress(to)), 0)
		cat, err := contracts.AsAddress(lastKittyCreated(rec))
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	catA = mint(1, h.users[1].Address()) // alice's cat
	catB = mint(2, h.users[2].Address()) // bob's cat
	return h, swap, catA, catB
}

func ownerOf(t *testing.T, h *harness, cat hashing.Address) hashing.Address {
	t.Helper()
	ret := h.view(1, hashing.Address{}, cat, contracts.EncodeCall("owner"))
	addr, err := contracts.AsAddress(ret)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestSwapHappyPath(t *testing.T) {
	h, swap, catA, catB := setupSwap(t)
	alice, bob := h.users[1], h.users[2]

	// Alice escrows her cat and proposes the exchange for Bob's cat.
	h.call(1, alice, catA, contracts.EncodeCall("transferOwner", contracts.ArgAddress(swap)), 0)
	rec := h.call(1, alice, swap, contracts.EncodeCall("propose",
		contracts.ArgAddress(catA), contracts.ArgAddress(catB), contracts.ArgAddress(bob.Address())), 0)
	_ = rec

	// Bob escrows his cat and accepts swap #1: the exchange is one
	// transaction, atomic by construction (§IX).
	h.call(1, bob, catB, contracts.EncodeCall("transferOwner", contracts.ArgAddress(swap)), 0)
	h.call(1, bob, swap, contracts.EncodeCall("accept", contracts.ArgUint(1)), 0)

	if got := ownerOf(t, h, catA); got != bob.Address() {
		t.Fatalf("catA owner = %s, want bob", got)
	}
	if got := ownerOf(t, h, catB); got != alice.Address() {
		t.Fatalf("catB owner = %s, want alice", got)
	}
	// The swap is consumed.
	h.callExpectFail(1, bob, swap, contracts.EncodeCall("accept", contracts.ArgUint(1)), "no open swap")
}

func TestSwapGuards(t *testing.T) {
	h, swap, catA, catB := setupSwap(t)
	alice, bob := h.users[1], h.users[2]
	eve := h.users[0]

	// Proposing without escrowing first fails.
	h.callExpectFail(1, alice, swap, contracts.EncodeCall("propose",
		contracts.ArgAddress(catA), contracts.ArgAddress(catB), contracts.ArgAddress(bob.Address())),
		"not escrowed")

	h.call(1, alice, catA, contracts.EncodeCall("transferOwner", contracts.ArgAddress(swap)), 0)
	h.call(1, alice, swap, contracts.EncodeCall("propose",
		contracts.ArgAddress(catA), contracts.ArgAddress(catB), contracts.ArgAddress(bob.Address())), 0)

	// Only the named counterparty may accept.
	h.callExpectFail(1, eve, swap, contracts.EncodeCall("accept", contracts.ArgUint(1)), "is for")
	// Accepting without escrowing the wanted asset fails.
	h.callExpectFail(1, bob, swap, contracts.EncodeCall("accept", contracts.ArgUint(1)), "not escrowed")
	// Only the proposer cancels; cancel returns the asset.
	h.callExpectFail(1, bob, swap, contracts.EncodeCall("cancel", contracts.ArgUint(1)), "proposer")
	h.call(1, alice, swap, contracts.EncodeCall("cancel", contracts.ArgUint(1)), 0)
	if got := ownerOf(t, h, catA); got != alice.Address() {
		t.Fatalf("cancel must return the cat, owner = %s", got)
	}
}

// TestSwapAfterCrossChainMove is the full §IX story: the cats start on
// different chains, migrate to the swap's chain via the Move protocol, and
// are exchanged there in one atomic transaction.
func TestSwapAfterCrossChainMove(t *testing.T) {
	h := newHarness(t, 3)
	owner := h.users[0]
	alice, bob := h.users[1], h.users[2]

	// Registries at the same address on both chains (CREATE2-deployed via
	// the harness uses plain CREATE; deploy one per chain and mint there).
	reg1 := h.deploy(1, owner, contracts.KittyRegistryName,
		contracts.KittyRegistryConstructorArgs(owner.Address()), 0)
	reg2 := h.deploy(2, owner, contracts.KittyRegistryName,
		contracts.KittyRegistryConstructorArgs(owner.Address()), 0)
	swap := h.deploy(2, owner, contracts.SwapName, nil, 0)

	mint := func(chain hashing.ChainID, reg hashing.Address, genes byte, to hashing.Address) hashing.Address {
		var g [32]byte
		g[31] = genes
		rec := h.call(chain, owner, reg, contracts.EncodeCall("createPromoKitty",
			contracts.ArgWord(g), contracts.ArgAddress(to)), 0)
		cat, err := contracts.AsAddress(lastKittyCreated(rec))
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	catA := mint(1, reg1, 1, alice.Address()) // on chain 1
	catB := mint(2, reg2, 2, bob.Address())   // on chain 2, where the swap lives

	// Alice's cat migrates to the swap's chain.
	h.moveContract(1, 2, alice, catA)

	// Escrow both, propose, accept — all local to chain 2 now.
	h.call(2, alice, catA, contracts.EncodeCall("transferOwner", contracts.ArgAddress(swap)), 0)
	h.call(2, alice, swap, contracts.EncodeCall("propose",
		contracts.ArgAddress(catA), contracts.ArgAddress(catB), contracts.ArgAddress(bob.Address())), 0)
	h.call(2, bob, catB, contracts.EncodeCall("transferOwner", contracts.ArgAddress(swap)), 0)
	rec := h.call(2, bob, swap, contracts.EncodeCall("accept", contracts.ArgUint(1)), 0)

	swapped := false
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicSwapped {
			swapped = true
		}
	}
	if !swapped {
		t.Fatal("Swapped event missing")
	}
	// Bob now owns the migrated cat and can move it wherever he operates.
	ret := h.view(2, bob.Address(), catA, contracts.EncodeCall("owner"))
	got, err := contracts.AsAddress(ret)
	if err != nil || got != bob.Address() {
		t.Fatalf("catA owner = %x (%v)", ret, err)
	}
	h.call(2, bob, catA, core.MoveToInput(1), 0)
	if h.chains[2].StateDB().GetLocation(catA) != 1 {
		t.Fatal("bob must be able to move his new cat")
	}
}
