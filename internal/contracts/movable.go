package contracts

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Errors shared by the contract standard library.
var (
	ErrNotOwner     = errors.New("contracts: caller is not the owner")
	ErrResidency    = errors.New("contracts: minimum residency not yet satisfied")
	ErrUnknownCall  = errors.New("contracts: unknown method")
	ErrBadOrigin    = errors.New("contracts: counterparty origin attestation failed")
	ErrInsufficient = errors.New("contracts: insufficient balance")
)

// Reserved storage slots used by the movable-contract machinery. The 0xFE
// prefix keeps them disjoint from application slots.
func reservedSlot(n byte) evm.Word {
	var w evm.Word
	w[0] = 0xFE
	w[31] = n
	return w
}

var (
	slotOwner   = reservedSlot(1)
	slotMovedAt = reservedSlot(2)
	slotSalt    = reservedSlot(3)
	slotParent  = reservedSlot(4) // the creating contract (token / registry)
)

// wordOfAddress right-aligns an address in a storage word.
func wordOfAddress(a hashing.Address) evm.Word {
	var w evm.Word
	copy(w[12:], a[:])
	return w
}

func addressOfWord(w evm.Word) hashing.Address {
	return hashing.AddressFromBytes(w[:])
}

func wordOfUint(v uint64) evm.Word {
	var w evm.Word
	binary.BigEndian.PutUint64(w[24:], v)
	return w
}

func uintOfWord(w evm.Word) uint64 {
	return binary.BigEndian.Uint64(w[24:])
}

// mapSlot derives the storage slot of a map entry, domain-separated by a
// per-map prefix (the Solidity keccak(key . slot) idiom).
func mapSlot(prefix byte, key []byte) evm.Word {
	h := hashing.SumTagged(prefix, key)
	var w evm.Word
	copy(w[:], h[:])
	w[0] = 0xFD // map region, disjoint from reserved and app slots
	return w
}

// Movable implements the Listing-1 pattern shared by every movable
// contract: an owner field, a movedAt timestamp, a moveTo guard (only the
// owner may move it, and only after MinResidency seconds in place), and the
// moveFinish stamp.
type Movable struct {
	// MinResidency is the Listing-1 "3 days" guard; zero disables it.
	MinResidency uint64
}

// Dispatch intercepts the protocol-level moveTo/moveFinish calldata. It
// reports whether the input was handled.
func (m Movable) Dispatch(call *evm.NativeCall, input []byte) (bool, error) {
	if core.IsMoveFinishInput(input) {
		return true, m.MoveFinish(call)
	}
	if target, ok := core.ParseMoveToInput(input); ok {
		return true, m.MoveTo(call, target)
	}
	return false, nil
}

// MoveTo is Listing 1's moveTo(uint _blockchainId): require(owner ==
// msg.sender); require(now - movedAt >= MinResidency); then OP_MOVE.
func (m Movable) MoveTo(call *evm.NativeCall, target hashing.ChainID) error {
	owner, err := Owner(call)
	if err != nil {
		return err
	}
	if !owner.IsZero() && call.Caller() != owner {
		return fmt.Errorf("%w: %s", ErrNotOwner, call.Caller())
	}
	if m.MinResidency > 0 {
		movedAtW, err := call.GetStorage(slotMovedAt)
		if err != nil {
			return err
		}
		if movedAt := uintOfWord(movedAtW); call.Time()-movedAt < m.MinResidency {
			return fmt.Errorf("%w: %ds of %ds", ErrResidency, call.Time()-movedAt, m.MinResidency)
		}
	}
	return call.Move(target)
}

// MoveFinish is Listing 1's moveFinish(): movedAt = now.
func (m Movable) MoveFinish(call *evm.NativeCall) error {
	return call.SetStorage(slotMovedAt, wordOfUint(call.Time()))
}

// SetOwner stores the owner field.
func SetOwner(call *evm.NativeCall, owner hashing.Address) error {
	return call.SetStorage(slotOwner, wordOfAddress(owner))
}

// Owner reads the owner field.
func Owner(call *evm.NativeCall) (hashing.Address, error) {
	w, err := call.GetStorage(slotOwner)
	if err != nil {
		return hashing.Address{}, err
	}
	return addressOfWord(w), nil
}

// requireOwner aborts unless the caller is the stored owner.
func requireOwner(call *evm.NativeCall) error {
	owner, err := Owner(call)
	if err != nil {
		return err
	}
	if call.Caller() != owner {
		return fmt.Errorf("%w: %s", ErrNotOwner, call.Caller())
	}
	return nil
}

// storeParentAndSalt records the creating contract and creation salt —
// the material of the CREATE2 origin attestation of §V-A.
func storeParentAndSalt(call *evm.NativeCall, salt uint64) error {
	if err := call.SetStorage(slotParent, wordOfAddress(call.Caller())); err != nil {
		return err
	}
	return call.SetStorage(slotSalt, wordOfUint(salt))
}

// parentAndSalt reads the attestation material back.
func parentAndSalt(call *evm.NativeCall) (hashing.Address, uint64, error) {
	p, err := call.GetStorage(slotParent)
	if err != nil {
		return hashing.Address{}, 0, err
	}
	s, err := call.GetStorage(slotSalt)
	if err != nil {
		return hashing.Address{}, 0, err
	}
	return addressOfWord(p), uintOfWord(s), nil
}

// expectedSibling computes the CREATE2 address a sibling contract (same
// parent, given salt, same code) must have. One hash — the paper's
// "inexpensive hash operation" (§V-A). The gas for it is charged to the
// calling frame.
func expectedSibling(call *evm.NativeCall, parent hashing.Address, salt uint64, nativeName string) (hashing.Address, error) {
	if err := call.UseGas(30 + 6*3); err != nil { // SHA3 base + 3 words
		return hashing.Address{}, err
	}
	var saltWord [32]byte
	binary.BigEndian.PutUint64(saltWord[24:], salt)
	codeHash := hashing.Sum(evm.NativeCode(nativeName))
	return hashing.Create2Address(0, parent, saltWord, codeHash), nil
}

// uniqueSalt combines a contract factory's local counter with its chain id,
// so that factory instances deployed at the same address on different
// shards never produce colliding CREATE2 identifiers.
func uniqueSalt(chain hashing.ChainID, counter uint64) uint64 {
	return uint64(chain)<<40 | counter
}

// saltWord converts a salt counter to the CREATE2 salt encoding.
func saltWord(salt uint64) [32]byte {
	var w [32]byte
	binary.BigEndian.PutUint64(w[24:], salt)
	return w
}

// getU256 / setU256 are storage helpers for 256-bit values.
func getU256(call *evm.NativeCall, slot evm.Word) (u256.Int, error) {
	w, err := call.GetStorage(slot)
	if err != nil {
		return u256.Int{}, err
	}
	return u256.FromBytes(w[:]), nil
}

func setU256(call *evm.NativeCall, slot evm.Word, v u256.Int) error {
	return call.SetStorage(slot, v.Bytes32())
}
