// Package contracts is the movable contract standard library of the paper:
// the Listing-1 movable-contract pattern (owner guard, minimum residency,
// moveTo/moveFinish), the STokenI/AccountI scalable token interfaces of
// Listing 2 with the SCoin implementation, ScalableKitties (§V-B), the
// Store-N state-transfer contracts of the IBC experiments (§VIII), and the
// currency-pegging relay of Fig. 3.
//
// Contracts are native (Go) implementations executed by the EVM host with
// the same gas accounting and move-lock rules as bytecode; see DESIGN.md's
// substitution table.
package contracts

import (
	"errors"
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// ErrBadCall reports malformed calldata.
var ErrBadCall = errors.New("contracts: malformed call data")

// EncodeCall builds calldata for a native contract method.
func EncodeCall(method string, args ...[]byte) []byte {
	w := codec.NewWriter(64)
	w.WriteString(method)
	w.WriteUvarint(uint64(len(args)))
	for _, a := range args {
		w.WriteBytes(a)
	}
	return w.Bytes()
}

// DecodeCall parses calldata built by EncodeCall.
func DecodeCall(input []byte) (method string, args [][]byte, err error) {
	r := codec.NewReader(input)
	method = r.ReadString()
	n := r.ReadUvarint()
	if n > 64 {
		return "", nil, fmt.Errorf("%w: too many arguments", ErrBadCall)
	}
	args = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		args = append(args, r.ReadBytes())
	}
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadCall, err)
	}
	return method, args, nil
}

// Argument encoding helpers.

// ArgAddress encodes an address argument.
func ArgAddress(a hashing.Address) []byte { return a.Bytes() }

// ArgUint encodes an unsigned integer argument.
func ArgUint(v uint64) []byte {
	w := codec.NewWriter(9)
	w.WriteUvarint(v)
	return w.Bytes()
}

// ArgWord encodes a 32-byte word argument.
func ArgWord(w evm.Word) []byte { return append([]byte{}, w[:]...) }

// ArgU256 encodes a 256-bit integer argument.
func ArgU256(v u256.Int) []byte {
	b := v.Bytes32()
	return b[:]
}

// AsAddress decodes an address argument.
func AsAddress(b []byte) (hashing.Address, error) {
	if len(b) != hashing.AddressSize {
		return hashing.Address{}, fmt.Errorf("%w: want address, got %d bytes", ErrBadCall, len(b))
	}
	var a hashing.Address
	copy(a[:], b)
	return a, nil
}

// AsUint decodes an unsigned integer argument.
func AsUint(b []byte) (uint64, error) {
	r := codec.NewReader(b)
	v := r.ReadUvarint()
	if err := r.Finish(); err != nil {
		return 0, fmt.Errorf("%w: want uint, %v", ErrBadCall, err)
	}
	return v, nil
}

// AsWord decodes a 32-byte word argument.
func AsWord(b []byte) (evm.Word, error) {
	if len(b) != 32 {
		return evm.Word{}, fmt.Errorf("%w: want word, got %d bytes", ErrBadCall, len(b))
	}
	var w evm.Word
	copy(w[:], b)
	return w, nil
}

// AsU256 decodes a 256-bit integer argument.
func AsU256(b []byte) (u256.Int, error) {
	w, err := AsWord(b)
	if err != nil {
		return u256.Int{}, err
	}
	return u256.FromBytes(w[:]), nil
}

// Return encoding helpers (single values).

// RetUint encodes an unsigned integer return value.
func RetUint(v uint64) []byte { return u256.FromUint64(v).Bytes() }

// RetU256 encodes a 256-bit return value.
func RetU256(v u256.Int) []byte {
	b := v.Bytes32()
	return b[:]
}

// RetAddress encodes an address return value.
func RetAddress(a hashing.Address) []byte { return a.Bytes() }

// RetBool encodes a boolean return value.
func RetBool(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

// wantArgs checks the argument count of a method call.
func wantArgs(method string, args [][]byte, n int) error {
	if len(args) != n {
		return fmt.Errorf("%w: %s wants %d args, got %d", ErrBadCall, method, n, len(args))
	}
	return nil
}
