package contracts

import (
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Registry names of the token contracts.
const (
	SCoinName    = "SCoin"
	SAccountName = "SAccount"
)

// Event topics.
var (
	TopicCreatedAccount = hashing.Sum([]byte("CreatedAccount(address,uint)"))
	TopicTransfer       = hashing.Sum([]byte("Transfer(address,uint)"))
	TopicApproval       = hashing.Sum([]byte("Approval(address,uint)"))
)

// SCoin-specific storage slots (application region, first byte 0x02).
func scoinSlot(n byte) evm.Word {
	var w evm.Word
	w[0] = 0x02
	w[31] = n
	return w
}

var (
	slotTotalSupply = scoinSlot(1)
	slotSaltCounter = scoinSlot(2)
	slotGrant       = scoinSlot(3)
)

// SCoin implements the STokenI interface of Listing 2: a scalable token
// whose per-user balances live in individual movable SAccount contracts
// created with CREATE2 salts, instead of one balances map that could never
// be split across blockchains (§V-A).
type SCoin struct{}

var _ evm.Native = SCoin{}

// Name implements evm.Native.
func (SCoin) Name() string { return SCoinName }

// CodeSize emulates the deployed token factory.
func (SCoin) CodeSize() int { return 3000 }

// SCoinConstructorArgs builds OnCreate args: the token owner and the grant
// of tokens credited to each newly created account (the experiment faucet).
func SCoinConstructorArgs(owner hashing.Address, grant u256.Int) []byte {
	return EncodeCall("init", ArgAddress(owner), ArgU256(grant))
}

// OnCreate stores the owner and per-account grant.
func (SCoin) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: scoin constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 2); err != nil {
		return err
	}
	owner, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	grant, err := AsU256(argv[1])
	if err != nil {
		return err
	}
	if err := SetOwner(call, owner); err != nil {
		return err
	}
	return setU256(call, slotGrant, grant)
}

// Run dispatches STokenI methods: totalSupply, newAccount, newAccountFor.
func (sc SCoin) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "totalSupply":
		supply, err := getU256(call, slotTotalSupply)
		if err != nil {
			return nil, err
		}
		return RetU256(supply), nil
	case "newAccount":
		if err := wantArgs(method, args, 0); err != nil {
			return nil, err
		}
		return sc.newAccountFor(call, call.Caller())
	case "newAccountFor":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		owner, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		return sc.newAccountFor(call, owner)
	default:
		return nil, fmt.Errorf("%w: SCoin.%s", ErrUnknownCall, method)
	}
}

// newAccountFor creates a fresh SAccount with a monotonically increasing
// salt (the attestation material of §V-A), grants it the faucet amount,
// and emits CreatedAccount(account, salt).
func (sc SCoin) newAccountFor(call *evm.NativeCall, owner hashing.Address) ([]byte, error) {
	saltW, err := call.GetStorage(slotSaltCounter)
	if err != nil {
		return nil, err
	}
	counter := uintOfWord(saltW)
	if err := call.SetStorage(slotSaltCounter, wordOfUint(counter+1)); err != nil {
		return nil, err
	}
	// Token factories are deployed at the same address on every shard (via
	// CREATE2); mixing the chain id into the salt keeps account identifiers
	// globally unique across the whole sharded system (§III-G(a)).
	salt := uniqueSalt(call.ChainID(), counter)
	grant, err := getU256(call, slotGrant)
	if err != nil {
		return nil, err
	}
	addr, err := call.CreateNative(SAccountName, saltWord(salt),
		SAccountConstructorArgs(owner, salt, grant), u256.Zero())
	if err != nil {
		return nil, fmt.Errorf("new account: %w", err)
	}
	supply, err := getU256(call, slotTotalSupply)
	if err != nil {
		return nil, err
	}
	if err := setU256(call, slotTotalSupply, supply.Add(grant)); err != nil {
		return nil, err
	}
	saltEnc := wordOfUint(salt)
	event := append(addr.Bytes(), saltEnc[:]...)
	if err := call.Emit([]hashing.Hash{TopicCreatedAccount}, event); err != nil {
		return nil, err
	}
	// Return the account address followed by its salt.
	return event, nil
}

// DecodeNewAccountResult parses newAccount's return value.
func DecodeNewAccountResult(ret []byte) (hashing.Address, uint64, error) {
	if len(ret) != hashing.AddressSize+32 {
		return hashing.Address{}, 0, fmt.Errorf("%w: newAccount result", ErrBadCall)
	}
	addr, err := AsAddress(ret[:hashing.AddressSize])
	if err != nil {
		return hashing.Address{}, 0, err
	}
	var w evm.Word
	copy(w[:], ret[hashing.AddressSize:])
	return addr, uintOfWord(w), nil
}

// SAccount-specific storage slots.
var (
	slotBalance = scoinSlot(10)
)

// SAccount implements the AccountI interface of Listing 2: one user's token
// balance as a movable contract. Transfers between accounts attest each
// other's origin with the CREATE2 salt check before crediting (§V-A).
type SAccount struct {
	// Residency guards repeated moves (Listing 1's "3 days"; zero in the
	// experiments).
	Residency uint64
}

var _ evm.Native = SAccount{}

// Name implements evm.Native.
func (SAccount) Name() string { return SAccountName }

// CodeSize emulates the deployed per-user account contract; at 200 gas per
// byte its recreation cost dominates SCoin's Move2 on the Ethereum-like
// chain, reproducing the ≈70 % creation share of Fig. 9.
func (SAccount) CodeSize() int { return 3700 }

// SAccountConstructorArgs builds OnCreate args.
func SAccountConstructorArgs(owner hashing.Address, salt uint64, balance u256.Int) []byte {
	return EncodeCall("init", ArgAddress(owner), ArgUint(salt), ArgU256(balance))
}

// OnCreate stores owner, the creating token with the salt, and the initial
// balance.
func (SAccount) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: saccount constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 3); err != nil {
		return err
	}
	owner, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	salt, err := AsUint(argv[1])
	if err != nil {
		return err
	}
	balance, err := AsU256(argv[2])
	if err != nil {
		return err
	}
	if err := SetOwner(call, owner); err != nil {
		return err
	}
	if err := storeParentAndSalt(call, salt); err != nil {
		return err
	}
	if balance.IsZero() {
		return nil
	}
	return setU256(call, slotBalance, balance)
}

// Run dispatches AccountI methods.
func (sa SAccount) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	if handled, err := (Movable{MinResidency: sa.Residency}).Dispatch(call, input); handled {
		return nil, err
	}
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "balance":
		bal, err := getU256(call, slotBalance)
		if err != nil {
			return nil, err
		}
		return RetU256(bal), nil
	case "owner":
		owner, err := Owner(call)
		if err != nil {
			return nil, err
		}
		return RetAddress(owner), nil
	case "salt":
		_, salt, err := parentAndSalt(call)
		if err != nil {
			return nil, err
		}
		return RetUint(salt), nil
	case "allowance":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		spender, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		allowed, err := getU256(call, mapSlot(0xA0, spender[:]))
		if err != nil {
			return nil, err
		}
		return RetU256(allowed), nil
	case "approve":
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		spender, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		tokens, err := AsU256(args[1])
		if err != nil {
			return nil, err
		}
		if err := setU256(call, mapSlot(0xA0, spender[:]), tokens); err != nil {
			return nil, err
		}
		return RetBool(true), call.Emit([]hashing.Hash{TopicApproval}, append(spender.Bytes(), RetU256(tokens)...))
	case "transfer":
		if err := wantArgs(method, args, 3); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		return sa.doTransfer(call, args)
	case "transferFrom":
		if err := wantArgs(method, args, 3); err != nil {
			return nil, err
		}
		if err := sa.spendAllowance(call, args); err != nil {
			return nil, err
		}
		return sa.doTransfer(call, args)
	case "debit":
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		return sa.debit(call, args)
	default:
		return nil, fmt.Errorf("%w: SAccount.%s", ErrUnknownCall, method)
	}
}

// doTransfer implements transfer(to, toSalt, tokens): attest the recipient
// was created by the same token with toSalt, decrement our balance, and
// call debit on the recipient.
func (sa SAccount) doTransfer(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	to, err := AsAddress(args[0])
	if err != nil {
		return nil, err
	}
	toSalt, err := AsUint(args[1])
	if err != nil {
		return nil, err
	}
	tokens, err := AsU256(args[2])
	if err != nil {
		return nil, err
	}
	token, mySalt, err := parentAndSalt(call)
	if err != nil {
		return nil, err
	}
	expected, err := expectedSibling(call, token, toSalt, SAccountName)
	if err != nil {
		return nil, err
	}
	if expected != to {
		return nil, fmt.Errorf("%w: %s is not account #%d of token %s", ErrBadOrigin, to, toSalt, token)
	}
	// The recipient must be deployed on this chain: a call to an absent
	// account would trivially succeed and burn the tokens. If it still
	// lives on another chain it must be moved here first (§V-A).
	codeSize, err := call.CodeSizeOf(to)
	if err != nil {
		return nil, err
	}
	if codeSize == 0 {
		return nil, fmt.Errorf("%w: recipient %s is not on this chain", ErrBadOrigin, to)
	}
	bal, err := getU256(call, slotBalance)
	if err != nil {
		return nil, err
	}
	if bal.Lt(tokens) {
		return nil, fmt.Errorf("%w: have %s, need %s", ErrInsufficient, bal, tokens)
	}
	if err := setU256(call, slotBalance, bal.Sub(tokens)); err != nil {
		return nil, err
	}
	if _, err := call.Call(to, EncodeCall("debit", ArgU256(tokens), ArgUint(mySalt)), u256.Zero()); err != nil {
		return nil, err
	}
	if err := call.Emit([]hashing.Hash{TopicTransfer}, append(to.Bytes(), RetU256(tokens)...)); err != nil {
		return nil, err
	}
	return RetBool(true), nil
}

// spendAllowance checks and decrements the caller's allowance for
// transferFrom.
func (sa SAccount) spendAllowance(call *evm.NativeCall, args [][]byte) error {
	tokens, err := AsU256(args[2])
	if err != nil {
		return err
	}
	spender := call.Caller()
	slot := mapSlot(0xA0, spender[:])
	allowed, err := getU256(call, slot)
	if err != nil {
		return err
	}
	if allowed.Lt(tokens) {
		return fmt.Errorf("%w: allowance %s below %s", ErrInsufficient, allowed, tokens)
	}
	return setU256(call, slot, allowed.Sub(tokens))
}

// debit implements debit(tokens, fromSalt): the recipient-side credit,
// agreeing only if the caller is the account the same token created with
// fromSalt (§V-A's mutual origin check).
func (sa SAccount) debit(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	tokens, err := AsU256(args[0])
	if err != nil {
		return nil, err
	}
	fromSalt, err := AsUint(args[1])
	if err != nil {
		return nil, err
	}
	token, _, err := parentAndSalt(call)
	if err != nil {
		return nil, err
	}
	expected, err := expectedSibling(call, token, fromSalt, SAccountName)
	if err != nil {
		return nil, err
	}
	if call.Caller() != expected {
		return nil, fmt.Errorf("%w: debit from %s", ErrBadOrigin, call.Caller())
	}
	bal, err := getU256(call, slotBalance)
	if err != nil {
		return nil, err
	}
	if err := setU256(call, slotBalance, bal.Add(tokens)); err != nil {
		return nil, err
	}
	return RetBool(true), nil
}
