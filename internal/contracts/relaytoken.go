package contracts

import (
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Registry names of the currency-relay contracts (Fig. 3).
const (
	TokenRelayName  = "TokenRelay"
	PeggedTokenName = "PeggedToken"
)

// Event topics of the relay contracts.
var (
	// TopicMinted is emitted when pegged tokens are minted on the target.
	TopicMinted = hashing.Sum([]byte("Minted(address,uint)"))
	// TopicRelayCreated is emitted with the new pegged token's address.
	TopicRelayCreated = hashing.Sum([]byte("RelayCreated(address)"))
)

// Relay storage slots (application region 0x04).
func relaySlot(n byte) evm.Word {
	var w evm.Word
	w[0] = 0x04
	w[31] = n
	return w
}

var (
	slotRelaySalt  = relaySlot(1)
	slotHomeChain  = relaySlot(2)
	slotAmount     = relaySlot(3)
	slotMinted     = relaySlot(4)
	prefixTokenBal = byte(0xC0)
)

// TokenRelay implements the currency transfer scheme of §III-F / Fig. 3: a
// client calls create(targetChain, beneficiary) with e units of native
// currency attached; the relay creates a PeggedToken contract r holding e
// and immediately executes Move1 on it. Once moved and recreated on the
// target chain, the beneficiary mints tokens provably backed by the e
// locked on the source chain.
type TokenRelay struct{}

var _ evm.Native = TokenRelay{}

// Name implements evm.Native.
func (TokenRelay) Name() string { return TokenRelayName }

// CodeSize emulates the deployed relay.
func (TokenRelay) CodeSize() int { return 2000 }

// OnCreate needs no arguments.
func (TokenRelay) OnCreate(*evm.NativeCall, []byte) error { return nil }

// Run dispatches relay methods.
func (tr TokenRelay) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "create":
		// create(targetChain, beneficiary) payable: Fig. 3's Tcreate.
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		target, err := AsUint(args[0])
		if err != nil {
			return nil, err
		}
		beneficiary, err := AsAddress(args[1])
		if err != nil {
			return nil, err
		}
		amount := call.Value()
		if amount.IsZero() {
			return nil, fmt.Errorf("%w: create needs attached currency", ErrBadCall)
		}
		saltW, err := call.GetStorage(slotRelaySalt)
		if err != nil {
			return nil, err
		}
		salt := uintOfWord(saltW)
		if err := call.SetStorage(slotRelaySalt, wordOfUint(salt+1)); err != nil {
			return nil, err
		}
		// Create r with the attached e and run Move1 on it in the same
		// transaction ("it executes Move1(Bj) on creation", §III-F).
		r, err := call.CreateNative(PeggedTokenName, saltWord(salt),
			PeggedTokenConstructorArgs(beneficiary, uint64(call.ChainID())), amount)
		if err != nil {
			return nil, fmt.Errorf("create pegged token: %w", err)
		}
		if _, err := call.Call(r, EncodeCall("relayMove", ArgUint(target)), u256.Zero()); err != nil {
			return nil, err
		}
		if err := call.Emit([]hashing.Hash{TopicRelayCreated}, r.Bytes()); err != nil {
			return nil, err
		}
		return RetAddress(r), nil
	default:
		return nil, fmt.Errorf("%w: TokenRelay.%s", ErrUnknownCall, method)
	}
}

// PeggedToken is the contract r of Fig. 3: it carries e units of source-
// chain currency, moves to the target chain, and mints tokens there that
// are provably backed by the locked e. Moving it home again lets the
// beneficiary withdraw the native currency (unlocking, §III-F).
type PeggedToken struct{}

var _ evm.Native = PeggedToken{}

// Name implements evm.Native.
func (PeggedToken) Name() string { return PeggedTokenName }

// CodeSize emulates the deployed pegged-token contract.
func (PeggedToken) CodeSize() int { return 2500 }

// PeggedTokenConstructorArgs builds OnCreate args.
func PeggedTokenConstructorArgs(beneficiary hashing.Address, homeChain uint64) []byte {
	return EncodeCall("init", ArgAddress(beneficiary), ArgUint(homeChain))
}

// OnCreate records the beneficiary (as owner), home chain, and the locked
// amount (the attached value).
func (PeggedToken) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: pegged token constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 2); err != nil {
		return err
	}
	beneficiary, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	home, err := AsUint(argv[1])
	if err != nil {
		return err
	}
	if err := SetOwner(call, beneficiary); err != nil {
		return err
	}
	if err := call.SetStorage(slotHomeChain, wordOfUint(home)); err != nil {
		return err
	}
	if err := storeParentAndSalt(call, 0); err != nil {
		return err
	}
	return setU256(call, slotAmount, call.Value())
}

// Run dispatches PeggedToken methods.
func (pt PeggedToken) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	if handled, err := (Movable{}).Dispatch(call, input); handled {
		return nil, err
	}
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "relayMove":
		// relayMove(target): Move1 executed by the creating relay.
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		parent, _, err := parentAndSalt(call)
		if err != nil {
			return nil, err
		}
		if call.Caller() != parent {
			return nil, fmt.Errorf("%w: relayMove from %s", ErrNotOwner, call.Caller())
		}
		target, err := AsUint(args[0])
		if err != nil {
			return nil, err
		}
		return nil, call.Move(hashing.ChainID(target))
	case "amount":
		amount, err := getU256(call, slotAmount)
		if err != nil {
			return nil, err
		}
		return RetU256(amount), nil
	case "mint":
		// mint(): Fig. 3's Tmint — only the beneficiary, only away from
		// home, only once.
		if err := wantArgs(method, args, 0); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		homeW, err := call.GetStorage(slotHomeChain)
		if err != nil {
			return nil, err
		}
		if uintOfWord(homeW) == uint64(call.ChainID()) {
			return nil, fmt.Errorf("%w: cannot mint on the home chain", ErrBadCall)
		}
		mintedW, err := call.GetStorage(slotMinted)
		if err != nil {
			return nil, err
		}
		if mintedW != (evm.Word{}) {
			return nil, fmt.Errorf("%w: already minted", ErrBadCall)
		}
		if err := call.SetStorage(slotMinted, wordOfUint(1)); err != nil {
			return nil, err
		}
		amount, err := getU256(call, slotAmount)
		if err != nil {
			return nil, err
		}
		owner := call.Caller()
		if err := setU256(call, mapSlot(prefixTokenBal, owner[:]), amount); err != nil {
			return nil, err
		}
		if err := call.Emit([]hashing.Hash{TopicMinted}, append(owner.Bytes(), RetU256(amount)...)); err != nil {
			return nil, err
		}
		return RetU256(amount), nil
	case "tokenBalance":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		who, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		bal, err := getU256(call, mapSlot(prefixTokenBal, who[:]))
		if err != nil {
			return nil, err
		}
		return RetU256(bal), nil
	case "tokenTransfer":
		// tokenTransfer(to, amount): move pegged tokens between holders on
		// the target chain.
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		to, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		amount, err := AsU256(args[1])
		if err != nil {
			return nil, err
		}
		from := call.Caller()
		fromBal, err := getU256(call, mapSlot(prefixTokenBal, from[:]))
		if err != nil {
			return nil, err
		}
		if fromBal.Lt(amount) {
			return nil, fmt.Errorf("%w: token balance %s below %s", ErrInsufficient, fromBal, amount)
		}
		toBal, err := getU256(call, mapSlot(prefixTokenBal, to[:]))
		if err != nil {
			return nil, err
		}
		if err := setU256(call, mapSlot(prefixTokenBal, from[:]), fromBal.Sub(amount)); err != nil {
			return nil, err
		}
		return RetBool(true), setU256(call, mapSlot(prefixTokenBal, to[:]), toBal.Add(amount))
	case "burnAndReturn":
		// burnAndReturn(): the token holder burns all pegged tokens and
		// sends the contract home, where withdraw() unlocks the currency.
		if err := wantArgs(method, args, 0); err != nil {
			return nil, err
		}
		holder := call.Caller()
		bal, err := getU256(call, mapSlot(prefixTokenBal, holder[:]))
		if err != nil {
			return nil, err
		}
		amount, err := getU256(call, slotAmount)
		if err != nil {
			return nil, err
		}
		if !bal.Eq(amount) {
			return nil, fmt.Errorf("%w: must hold all %s tokens to return", ErrInsufficient, amount)
		}
		if err := setU256(call, mapSlot(prefixTokenBal, holder[:]), u256.Zero()); err != nil {
			return nil, err
		}
		if err := call.SetStorage(slotMinted, evm.Word{}); err != nil {
			return nil, err
		}
		// The returning holder becomes the owner entitled to withdraw.
		if err := SetOwner(call, holder); err != nil {
			return nil, err
		}
		homeW, err := call.GetStorage(slotHomeChain)
		if err != nil {
			return nil, err
		}
		return nil, call.Move(hashing.ChainID(uintOfWord(homeW)))
	case "withdraw":
		// withdraw(): on the home chain, pay out the locked currency.
		if err := wantArgs(method, args, 0); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		homeW, err := call.GetStorage(slotHomeChain)
		if err != nil {
			return nil, err
		}
		if uintOfWord(homeW) != uint64(call.ChainID()) {
			return nil, fmt.Errorf("%w: withdraw only on the home chain", ErrBadCall)
		}
		amount, err := getU256(call, slotAmount)
		if err != nil {
			return nil, err
		}
		if err := setU256(call, slotAmount, u256.Zero()); err != nil {
			return nil, err
		}
		return RetU256(amount), call.Transfer(call.Caller(), amount)
	default:
		return nil, fmt.Errorf("%w: PeggedToken.%s", ErrUnknownCall, method)
	}
}
