package contracts

import "scmove/internal/evm"

// NewRegistry returns the standard library registry deployed on every chain
// in the experiments: the token (SCoin/SAccount), ScalableKitties, Store-N,
// and the currency relay.
func NewRegistry() *evm.Registry {
	return evm.MustNewRegistry(
		SCoin{},
		SAccount{},
		Store{},
		KittyRegistry{},
		Kitty{},
		TokenRelay{},
		PeggedToken{},
		Swap{},
	)
}

// NewRegistryWithResidency returns a registry whose movable contracts
// enforce the given minimum residency in seconds (Listing 1's "3 days"
// guard) before they may move again.
func NewRegistryWithResidency(seconds uint64) *evm.Registry {
	return evm.MustNewRegistry(
		SCoin{},
		SAccount{Residency: seconds},
		Store{Residency: seconds},
		KittyRegistry{},
		Kitty{Residency: seconds},
		TokenRelay{},
		PeggedToken{},
		Swap{},
	)
}
