package contracts

import (
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/u256"
)

// WellKnown derives the fixed address where a shared contract (a token
// factory or game registry) is pre-deployed on *every* shard. Deploying the
// same code at the same address everywhere is what lets per-user contracts
// keep their CREATE2-derived identifiers as they migrate (§V-A).
func WellKnown(name string) hashing.Address {
	return hashing.AddressFromHash(hashing.SumTagged(0xA7, []byte(name)))
}

// GenesisSCoin installs an SCoin token factory directly into genesis state
// at the given address with the given owner and per-account grant. Sharded
// experiments call this on every shard with the same address.
func GenesisSCoin(db *state.DB, addr, owner hashing.Address, grant u256.Int) {
	db.CreateContract(addr, evm.NativeCode(SCoinName))
	db.SetStorage(addr, slotOwner, wordOfAddress(owner))
	db.SetStorage(addr, slotGrant, grant.Bytes32())
}

// GenesisKittyRegistry installs a ScalableKitties registry into genesis
// state at the given address.
func GenesisKittyRegistry(db *state.DB, addr, owner hashing.Address) {
	db.CreateContract(addr, evm.NativeCode(KittyRegistryName))
	db.SetStorage(addr, slotOwner, wordOfAddress(owner))
}

// GenesisTokenRelay installs a TokenRelay into genesis state.
func GenesisTokenRelay(db *state.DB, addr hashing.Address) {
	db.CreateContract(addr, evm.NativeCode(TokenRelayName))
}
