package contracts

import (
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// SwapName is the registry name of the atomic-swap contract.
const SwapName = "Swap"

// TopicSwapped is emitted when a swap executes.
var TopicSwapped = hashing.Sum([]byte("Swapped(uint)"))

// Swap implements the paper's §IX observation that the Move protocol
// subsumes atomic cross-chain swaps: instead of a two-phase cross-chain
// protocol, both parties move their asset contracts to the chain hosting
// the Swap contract, where the exchange is a single — trivially atomic —
// transaction. Assets are anything with a transferOwner/owner interface
// (Kitty contracts in the tests).
//
// Flow: the proposer transfers ownership of their asset to the swap and
// calls propose(myAsset, wantedAsset, counterparty); the counterparty
// transfers their asset's ownership and calls accept(id); the contract
// hands each asset to the other party atomically. Until acceptance the
// proposer can cancel(id) to reclaim ownership.
type Swap struct{}

var _ evm.Native = Swap{}

// Swap storage slots (application region 0x06).
func swapSlot(n byte) evm.Word {
	var w evm.Word
	w[0] = 0x06
	w[31] = n
	return w
}

var (
	slotSwapSeq       = swapSlot(1)
	prefixSwapGive    = byte(0xD0) // id -> proposer's asset
	prefixSwapWant    = byte(0xD1) // id -> wanted asset
	prefixSwapParty   = byte(0xD2) // id -> counterparty address
	prefixSwapOwner   = byte(0xD3) // id -> proposer address
	prefixSwapPending = byte(0xD4) // id -> 1 while open
)

// Name implements evm.Native.
func (Swap) Name() string { return SwapName }

// CodeSize emulates the deployed swap contract.
func (Swap) CodeSize() int { return 1800 }

// OnCreate needs no arguments.
func (Swap) OnCreate(*evm.NativeCall, []byte) error { return nil }

// Run dispatches swap methods.
func (s Swap) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "propose":
		if err := wantArgs(method, args, 3); err != nil {
			return nil, err
		}
		return s.propose(call, args)
	case "accept":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		return s.accept(call, args)
	case "cancel":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		return s.cancel(call, args)
	default:
		return nil, fmt.Errorf("%w: Swap.%s", ErrUnknownCall, method)
	}
}

// assetOwner reads an asset contract's owner view.
func assetOwner(call *evm.NativeCall, asset hashing.Address) (hashing.Address, error) {
	ret, err := call.StaticCall(asset, EncodeCall("owner"))
	if err != nil {
		return hashing.Address{}, err
	}
	return AsAddress(ret)
}

// giveAsset transfers an asset the swap owns to a new owner.
func giveAsset(call *evm.NativeCall, asset, to hashing.Address) error {
	_, err := call.Call(asset, EncodeCall("transferOwner", ArgAddress(to)), u256.Zero())
	return err
}

func (s Swap) propose(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	give, err := AsAddress(args[0])
	if err != nil {
		return nil, err
	}
	want, err := AsAddress(args[1])
	if err != nil {
		return nil, err
	}
	counterparty, err := AsAddress(args[2])
	if err != nil {
		return nil, err
	}
	// The proposer must already have escrowed the asset: the swap contract
	// must be its owner, and the asset must be local (not mid-move).
	owner, err := assetOwner(call, give)
	if err != nil {
		return nil, fmt.Errorf("contracts: swap cannot read asset %s: %w", give, err)
	}
	if owner != call.Self() {
		return nil, fmt.Errorf("%w: asset %s not escrowed to the swap", ErrNotOwner, give)
	}
	seqW, err := call.GetStorage(slotSwapSeq)
	if err != nil {
		return nil, err
	}
	id := uintOfWord(seqW) + 1
	if err := call.SetStorage(slotSwapSeq, wordOfUint(id)); err != nil {
		return nil, err
	}
	idKey := wordOfUint(id)
	caller := call.Caller()
	writes := []struct {
		prefix byte
		value  evm.Word
	}{
		{prefixSwapGive, wordOfAddress(give)},
		{prefixSwapWant, wordOfAddress(want)},
		{prefixSwapParty, wordOfAddress(counterparty)},
		{prefixSwapOwner, wordOfAddress(caller)},
		{prefixSwapPending, wordOfUint(1)},
	}
	for _, w := range writes {
		if err := call.SetStorage(mapSlot(w.prefix, idKey[:]), w.value); err != nil {
			return nil, err
		}
	}
	return RetUint(id), nil
}

// loadSwap reads an open proposal.
func (s Swap) loadSwap(call *evm.NativeCall, id uint64) (give, want, party, proposer hashing.Address, err error) {
	idKey := wordOfUint(id)
	pending, err := call.GetStorage(mapSlot(prefixSwapPending, idKey[:]))
	if err != nil {
		return
	}
	if pending == (evm.Word{}) {
		err = fmt.Errorf("contracts: no open swap #%d", id)
		return
	}
	read := func(prefix byte) (evm.Word, error) {
		return call.GetStorage(mapSlot(prefix, idKey[:]))
	}
	var g, w, p, o evm.Word
	if g, err = read(prefixSwapGive); err != nil {
		return
	}
	if w, err = read(prefixSwapWant); err != nil {
		return
	}
	if p, err = read(prefixSwapParty); err != nil {
		return
	}
	if o, err = read(prefixSwapOwner); err != nil {
		return
	}
	return addressOfWord(g), addressOfWord(w), addressOfWord(p), addressOfWord(o), nil
}

// closeSwap deletes the pending marker.
func (s Swap) closeSwap(call *evm.NativeCall, id uint64) error {
	idKey := wordOfUint(id)
	return call.SetStorage(mapSlot(prefixSwapPending, idKey[:]), evm.Word{})
}

func (s Swap) accept(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	id, err := AsUint(args[0])
	if err != nil {
		return nil, err
	}
	give, want, party, proposer, err := s.loadSwap(call, id)
	if err != nil {
		return nil, err
	}
	if call.Caller() != party {
		return nil, fmt.Errorf("%w: swap #%d is for %s", ErrNotOwner, id, party)
	}
	// The counterparty must have escrowed the wanted asset too.
	owner, err := assetOwner(call, want)
	if err != nil {
		return nil, err
	}
	if owner != call.Self() {
		return nil, fmt.Errorf("%w: asset %s not escrowed to the swap", ErrNotOwner, want)
	}
	// The exchange: one transaction, atomic by construction.
	if err := giveAsset(call, give, party); err != nil {
		return nil, err
	}
	if err := giveAsset(call, want, proposer); err != nil {
		return nil, err
	}
	if err := s.closeSwap(call, id); err != nil {
		return nil, err
	}
	idKey := wordOfUint(id)
	if err := call.Emit([]hashing.Hash{TopicSwapped}, idKey[:]); err != nil {
		return nil, err
	}
	return RetBool(true), nil
}

func (s Swap) cancel(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	id, err := AsUint(args[0])
	if err != nil {
		return nil, err
	}
	give, _, _, proposer, err := s.loadSwap(call, id)
	if err != nil {
		return nil, err
	}
	if call.Caller() != proposer {
		return nil, fmt.Errorf("%w: only the proposer cancels", ErrNotOwner)
	}
	if err := giveAsset(call, give, proposer); err != nil {
		return nil, err
	}
	return RetBool(true), s.closeSwap(call, id)
}
