package contracts_test

import (
	"strings"
	"testing"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

const fund = uint64(1) << 50

// harness drives one or two chains through direct block application (no
// consensus; contract logic is what is under test).
type harness struct {
	t      *testing.T
	chains map[hashing.ChainID]*chain.Chain
	nonces map[hashing.ChainID]map[hashing.Address]uint64
	now    uint64
	users  []*keys.KeyPair
}

func newHarness(t *testing.T, userCount int) *harness {
	t.Helper()
	h := &harness{
		t:      t,
		chains: make(map[hashing.ChainID]*chain.Chain),
		nonces: make(map[hashing.ChainID]map[hashing.Address]uint64),
		now:    1000,
	}
	for i := 0; i < userCount; i++ {
		h.users = append(h.users, keys.Deterministic(uint64(100+i)))
	}
	registry := contracts.NewRegistry()
	cfgs := []chain.Config{
		{
			ChainID: 1, TreeKind: trie.KindMPT, Schedule: evm.EthereumSchedule(),
			BlockGasLimit: 100_000_000, MaxBlockTxs: 500, ConfirmationDepth: 6,
			Natives: registry, PoolLimit: 10_000,
		},
		{
			ChainID: 2, TreeKind: trie.KindIAVL, Schedule: evm.BurrowSchedule(),
			BlockGasLimit: 100_000_000, MaxBlockTxs: 500, ConfirmationDepth: 2,
			LaggingStateRoot: true, Natives: registry, PoolLimit: 10_000,
		},
	}
	params := []core.ChainParams{cfgs[0].Params(), cfgs[1].Params()}
	for _, cfg := range cfgs {
		c, err := chain.New(cfg, core.NewHeaderStore(params...), func(db *state.DB) {
			for _, u := range h.users {
				db.AddBalance(u.Address(), u256.FromUint64(fund))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		h.chains[cfg.ChainID] = c
		h.nonces[cfg.ChainID] = make(map[hashing.Address]uint64)
	}
	return h
}

// run submits a call transaction and applies a block, returning the receipt.
func (h *harness) run(id hashing.ChainID, kp *keys.KeyPair, kind types.TxKind,
	to hashing.Address, data []byte, value uint64, payload *types.Move2Payload) *types.Receipt {
	h.t.Helper()
	c := h.chains[id]
	tx := &types.Transaction{
		ChainID:  id,
		Nonce:    h.nonces[id][kp.Address()],
		Kind:     kind,
		To:       to,
		Value:    u256.FromUint64(value),
		GasLimit: 50_000_000,
		GasPrice: u256.FromUint64(2),
		Data:     data,
		Move2:    payload,
	}
	if err := tx.Sign(kp); err != nil {
		h.t.Fatal(err)
	}
	h.nonces[id][kp.Address()]++
	if err := c.SubmitTx(tx); err != nil {
		h.t.Fatal(err)
	}
	h.now += 5
	_, receipts := c.ApplyBlock(c.ProposeBatch(), h.now, chain.ProposerAddress(id, 0))
	for _, r := range receipts {
		if r.TxID == tx.ID() {
			return r
		}
	}
	h.t.Fatal("transaction not executed")
	return nil
}

// call is run with TxCall and asserts success.
func (h *harness) call(id hashing.ChainID, kp *keys.KeyPair, to hashing.Address, data []byte, value uint64) *types.Receipt {
	h.t.Helper()
	rec := h.run(id, kp, types.TxCall, to, data, value, nil)
	if !rec.Succeeded() {
		h.t.Fatalf("call failed: %s", rec.Err)
	}
	return rec
}

// callExpectFail is run with TxCall and asserts failure containing msg.
func (h *harness) callExpectFail(id hashing.ChainID, kp *keys.KeyPair, to hashing.Address, data []byte, msg string) {
	h.t.Helper()
	rec := h.run(id, kp, types.TxCall, to, data, 0, nil)
	if rec.Succeeded() {
		h.t.Fatalf("call must fail (want %q)", msg)
	}
	if !strings.Contains(rec.Err, msg) {
		h.t.Fatalf("err = %q, want substring %q", rec.Err, msg)
	}
}

// deploy creates a native contract and returns its address.
func (h *harness) deploy(id hashing.ChainID, kp *keys.KeyPair, name string, args []byte, value uint64) hashing.Address {
	h.t.Helper()
	rec := h.run(id, kp, types.TxCreate, hashing.Address{}, evm.NativeDeployment(name, args), value, nil)
	if !rec.Succeeded() {
		h.t.Fatalf("deploy %s failed: %s", name, rec.Err)
	}
	return rec.Created
}

// view runs a read-only call.
func (h *harness) view(id hashing.ChainID, from hashing.Address, to hashing.Address, data []byte) []byte {
	h.t.Helper()
	ret, err := h.chains[id].StaticCall(from, to, data)
	if err != nil {
		h.t.Fatalf("view: %v", err)
	}
	return ret
}

// moveContract performs the full Move1/proof/Move2 between the two chains
// without consensus timing (headers relayed immediately).
func (h *harness) moveContract(from, to hashing.ChainID, kp *keys.KeyPair, contract hashing.Address) {
	h.t.Helper()
	src, dst := h.chains[from], h.chains[to]
	rec := h.call(from, kp, contract, core.MoveToInput(to), 0)
	_ = rec
	height := src.Head().Height
	payload, err := core.BuildMoveProof(src.StateDB(), contract, height)
	if err != nil {
		h.t.Fatal(err)
	}
	// Mine out the confirmation depth (plus the lagging-root block) and
	// relay all headers.
	depth := src.Config().ConfirmationDepth + 2
	for i := uint64(0); i < depth; i++ {
		h.now += 5
		src.ApplyBlock(nil, h.now, chain.ProposerAddress(from, 0))
	}
	var headers []*types.Header
	for hh := uint64(0); hh <= src.Head().Height; hh++ {
		hdr, _ := src.HeaderAt(hh)
		headers = append(headers, hdr)
	}
	if err := dst.Headers().Update(from, headers, src.Head().Height); err != nil {
		h.t.Fatal(err)
	}
	rec2 := h.run(to, kp, types.TxMove2, hashing.Address{}, nil, 0, payload)
	if !rec2.Succeeded() {
		h.t.Fatalf("move2 failed: %s", rec2.Err)
	}
}

// --- Store ---

func TestStoreLifecycle(t *testing.T) {
	h := newHarness(t, 2)
	alice, bob := h.users[0], h.users[1]
	store := h.deploy(1, alice, contracts.StoreName, contracts.StoreConstructorArgs(alice.Address(), 10), 0)

	// Values are populated.
	v := h.view(1, alice.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(3)))
	if len(v) != 32 || u256.FromBytes(v).IsZero() {
		t.Fatalf("get(3) = %x", v)
	}
	// Owner can set; others cannot.
	var newVal evm.Word
	newVal[31] = 0x55
	h.call(1, alice, store, contracts.EncodeCall("set", contracts.ArgUint(3), contracts.ArgWord(newVal)), 0)
	got := h.view(1, alice.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(3)))
	if got[31] != 0x55 {
		t.Fatalf("set did not stick: %x", got)
	}
	h.callExpectFail(1, bob, store, contracts.EncodeCall("set", contracts.ArgUint(3), contracts.ArgWord(newVal)), "owner")

	// Unknown methods fail.
	h.callExpectFail(1, alice, store, contracts.EncodeCall("frobnicate"), "unknown method")
}

func TestStoreMovesBetweenChains(t *testing.T) {
	h := newHarness(t, 1)
	alice := h.users[0]
	store := h.deploy(1, alice, contracts.StoreName, contracts.StoreConstructorArgs(alice.Address(), 5), 0)
	before := h.view(1, alice.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(2)))

	h.moveContract(1, 2, alice, store)

	// Locked on the source: writes fail, reads still work.
	var val evm.Word
	val[31] = 1
	h.callExpectFail(1, alice, store, contracts.EncodeCall("set", contracts.ArgUint(0), contracts.ArgWord(val)), "locked")
	srcRead := h.view(1, alice.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(2)))
	if string(srcRead) != string(before) {
		t.Fatal("locked contract must remain readable")
	}
	// Live on the target with identical state.
	after := h.view(2, alice.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(2)))
	if string(after) != string(before) {
		t.Fatalf("state mismatch after move: %x vs %x", after, before)
	}
	// Writable on the target by its owner.
	h.call(2, alice, store, contracts.EncodeCall("set", contracts.ArgUint(0), contracts.ArgWord(val)), 0)
}

// TestStoreOnlyOwnerMoves covers the Listing-1 owner guard.
func TestStoreOnlyOwnerMoves(t *testing.T) {
	h := newHarness(t, 2)
	alice, eve := h.users[0], h.users[1]
	store := h.deploy(1, alice, contracts.StoreName, contracts.StoreConstructorArgs(alice.Address(), 1), 0)
	h.callExpectFail(1, eve, store, core.MoveToInput(2), "owner")
}

// --- SCoin / SAccount ---

type tokenFixture struct {
	h     *harness
	token hashing.Address
	alice *keys.KeyPair
	bob   *keys.KeyPair
	accA  hashing.Address
	saltA uint64
	accB  hashing.Address
	saltB uint64
}

func newTokenFixture(t *testing.T) *tokenFixture {
	h := newHarness(t, 3)
	alice, bob := h.users[0], h.users[1]
	token := h.deploy(1, alice, contracts.SCoinName,
		contracts.SCoinConstructorArgs(alice.Address(), u256.FromUint64(1000)), 0)

	newAccount := func(kp *keys.KeyPair) (hashing.Address, uint64) {
		rec := h.call(1, kp, token, contracts.EncodeCall("newAccount"), 0)
		for _, log := range rec.Logs {
			if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicCreatedAccount {
				addr, salt, err := contracts.DecodeNewAccountResult(log.Data)
				if err != nil {
					t.Fatal(err)
				}
				return addr, salt
			}
		}
		t.Fatal("CreatedAccount event missing")
		return hashing.Address{}, 0
	}
	accA, saltA := newAccount(alice)
	accB, saltB := newAccount(bob)
	return &tokenFixture{h: h, token: token, alice: alice, bob: bob,
		accA: accA, saltA: saltA, accB: accB, saltB: saltB}
}

func (f *tokenFixture) balanceOn(id hashing.ChainID, acc hashing.Address) uint64 {
	ret := f.h.view(id, f.alice.Address(), acc, contracts.EncodeCall("balance"))
	return u256.FromBytes(ret).Uint64()
}

func TestSCoinAccountsAndTransfer(t *testing.T) {
	f := newTokenFixture(t)
	h := f.h
	if f.saltA == f.saltB {
		t.Fatal("salts must be unique")
	}
	if got := f.balanceOn(1, f.accA); got != 1000 {
		t.Fatalf("initial balance = %d", got)
	}
	supply := u256.FromBytes(h.view(1, f.alice.Address(), f.token, contracts.EncodeCall("totalSupply")))
	if supply.Uint64() != 2000 {
		t.Fatalf("totalSupply = %s", supply)
	}

	// Alice transfers 250 from her account to Bob's, attested by salt.
	h.call(1, f.alice, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(250))), 0)
	if got := f.balanceOn(1, f.accA); got != 750 {
		t.Fatalf("A = %d", got)
	}
	if got := f.balanceOn(1, f.accB); got != 1250 {
		t.Fatalf("B = %d", got)
	}
}

func TestSCoinTransferGuards(t *testing.T) {
	f := newTokenFixture(t)
	h := f.h
	// Only the owner can spend.
	h.callExpectFail(1, f.bob, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(1))), "owner")
	// Wrong salt: origin attestation must fail.
	h.callExpectFail(1, f.alice, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB+7), contracts.ArgU256(u256.FromUint64(1))), "origin")
	// Overdraft.
	h.callExpectFail(1, f.alice, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(10_000))), "insufficient")
	// Direct debit from a non-sibling caller must fail.
	h.callExpectFail(1, f.bob, f.accB, contracts.EncodeCall("debit",
		contracts.ArgU256(u256.FromUint64(500)), contracts.ArgUint(f.saltA)), "origin")
}

func TestSCoinApproveTransferFrom(t *testing.T) {
	f := newTokenFixture(t)
	h := f.h
	spender := h.users[2]
	// Alice approves the spender for 300 on her account.
	h.call(1, f.alice, f.accA, contracts.EncodeCall("approve",
		contracts.ArgAddress(spender.Address()), contracts.ArgU256(u256.FromUint64(300))), 0)
	got := u256.FromBytes(h.view(1, f.alice.Address(), f.accA,
		contracts.EncodeCall("allowance", contracts.ArgAddress(spender.Address()))))
	if got.Uint64() != 300 {
		t.Fatalf("allowance = %s", got)
	}
	// The spender moves 200 to Bob's account.
	h.call(1, spender, f.accA, contracts.EncodeCall("transferFrom",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(200))), 0)
	if f.balanceOn(1, f.accB) != 1200 {
		t.Fatal("transferFrom must credit B")
	}
	// Exceeding the remaining allowance fails.
	h.callExpectFail(1, spender, f.accA, contracts.EncodeCall("transferFrom",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(200))), "allowance")
}

// TestSCoinCrossChainTransfer is the paper's headline flow (§V-A): both
// accounts move from chain 1 to chain 2 and transact there — the CREATE2
// identifiers survive the move, so the salt attestation still works.
func TestSCoinCrossChainTransfer(t *testing.T) {
	f := newTokenFixture(t)
	h := f.h

	h.moveContract(1, 2, f.alice, f.accA)
	h.moveContract(1, 2, f.bob, f.accB)

	// Same identifiers, same balances, now on chain 2.
	if got := f.balanceOn(2, f.accA); got != 1000 {
		t.Fatalf("A on chain 2 = %d", got)
	}
	// Transfer on chain 2 with the same salts.
	h.call(2, f.alice, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(400))), 0)
	if got := f.balanceOn(2, f.accB); got != 1400 {
		t.Fatalf("B on chain 2 = %d", got)
	}
	// The source-chain copies are locked.
	h.callExpectFail(1, f.alice, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(1))), "locked")
}

// TestSCoinTransferToUnmovedAccountFails: if the destination account has
// not moved to the same chain, the call reaches an empty account and the
// transfer must abort rather than burn tokens.
func TestSCoinTransferToUnmovedAccountFails(t *testing.T) {
	f := newTokenFixture(t)
	h := f.h
	h.moveContract(1, 2, f.alice, f.accA)
	// accB still lives on chain 1: the debit call on chain 2 finds no code
	// and returns no data, so the transfer fails and A keeps its balance.
	rec := h.run(2, f.alice, types.TxCall, f.accA, contracts.EncodeCall("transfer",
		contracts.ArgAddress(f.accB), contracts.ArgUint(f.saltB), contracts.ArgU256(u256.FromUint64(10))), 0, nil)
	if rec.Succeeded() {
		t.Fatal("transfer to an absent account must fail")
	}
	if got := f.balanceOn(2, f.accA); got != 1000 {
		t.Fatalf("A must keep its tokens, has %d", got)
	}
}

// --- ScalableKitties ---

type kittyFixture struct {
	h        *harness
	registry hashing.Address
	owner    *keys.KeyPair
	breeder  *keys.KeyPair
}

func newKittyFixture(t *testing.T) *kittyFixture {
	h := newHarness(t, 3)
	owner := h.users[0]
	reg := h.deploy(1, owner, contracts.KittyRegistryName,
		contracts.KittyRegistryConstructorArgs(owner.Address()), 0)
	return &kittyFixture{h: h, registry: reg, owner: owner, breeder: h.users[1]}
}

func (f *kittyFixture) promo(kp *keys.KeyPair, genes byte) (hashing.Address, uint64) {
	f.h.t.Helper()
	var g evm.Word
	g[31] = genes
	rec := f.h.call(1, f.owner, f.registry, contracts.EncodeCall("createPromoKitty",
		contracts.ArgWord(g), contracts.ArgAddress(kp.Address())), 0)
	cat, err := contracts.AsAddress(lastKittyCreated(rec))
	if err != nil {
		f.h.t.Fatal(err)
	}
	salt := u256.FromBytes(f.h.view(1, kp.Address(), cat, contracts.EncodeCall("salt"))).Uint64()
	return cat, salt
}

func lastKittyCreated(rec *types.Receipt) []byte {
	for i := len(rec.Logs) - 1; i >= 0; i-- {
		if len(rec.Logs[i].Topics) == 1 && rec.Logs[i].Topics[0] == contracts.TopicKittyCreated {
			return rec.Logs[i].Data
		}
	}
	return nil
}

func TestKittiesPromoAndGuards(t *testing.T) {
	f := newKittyFixture(t)
	h := f.h
	cat, _ := f.promo(f.breeder, 1)
	ownerRet := h.view(1, f.breeder.Address(), cat, contracts.EncodeCall("owner"))
	got, err := contracts.AsAddress(ownerRet)
	if err != nil || got != f.breeder.Address() {
		t.Fatalf("owner = %x (%v)", ownerRet, err)
	}
	// Non-owners cannot mint promos.
	var g evm.Word
	h.callExpectFail(1, f.breeder, f.registry, contracts.EncodeCall("createPromoKitty",
		contracts.ArgWord(g), contracts.ArgAddress(f.breeder.Address())), "owner")
}

func TestKittiesBreedAndGiveBirth(t *testing.T) {
	f := newKittyFixture(t)
	h := f.h
	catA, saltA := f.promo(f.breeder, 1)
	catB, saltB := f.promo(f.breeder, 2) // same owner: siring implicitly allowed

	rec := h.call(1, f.breeder, f.registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(catA), contracts.ArgUint(saltA),
		contracts.ArgAddress(catB), contracts.ArgUint(saltB)), 0)
	var pregnancy uint64
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicPregnant {
			pregnancy = u256.FromBytes(log.Data).Uint64()
		}
	}
	if pregnancy == 0 {
		t.Fatal("Pregnant event missing")
	}
	rec = h.call(1, f.breeder, f.registry, contracts.EncodeCall("giveBirth", contracts.ArgUint(pregnancy)), 0)
	child, err := contracts.AsAddress(lastKittyCreated(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Child lineage points at both parents.
	parents := h.view(1, f.breeder.Address(), child, contracts.EncodeCall("parents"))
	if len(parents) != 40 {
		t.Fatalf("parents = %x", parents)
	}
	pa, _ := contracts.AsAddress(parents[:20])
	pb, _ := contracts.AsAddress(parents[20:])
	if pa != catA || pb != catB {
		t.Fatal("lineage mismatch")
	}
	// Second giveBirth on the same pregnancy fails.
	h.callExpectFail(1, f.breeder, f.registry, contracts.EncodeCall("giveBirth", contracts.ArgUint(pregnancy)), "no pregnancy")
}

func TestKittiesSiringApproval(t *testing.T) {
	f := newKittyFixture(t)
	h := f.h
	other := h.users[2]
	catA, saltA := f.promo(f.breeder, 1)
	catB, saltB := f.promo(other, 2) // different owner

	// Without approval, breeding fails.
	h.callExpectFail(1, f.breeder, f.registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(catA), contracts.ArgUint(saltA),
		contracts.ArgAddress(catB), contracts.ArgUint(saltB)), "siring")
	// B's owner approves A; now it works.
	h.call(1, other, catB, contracts.EncodeCall("approveSiring", contracts.ArgAddress(catA)), 0)
	h.call(1, f.breeder, f.registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(catA), contracts.ArgUint(saltA),
		contracts.ArgAddress(catB), contracts.ArgUint(saltB)), 0)
}

func TestKittiesSiblingsCannotMate(t *testing.T) {
	f := newKittyFixture(t)
	h := f.h
	catA, saltA := f.promo(f.breeder, 1)
	catB, saltB := f.promo(f.breeder, 2)
	// Produce two children of (A, B).
	makeChild := func() (hashing.Address, uint64) {
		rec := h.call(1, f.breeder, f.registry, contracts.EncodeCall("breed",
			contracts.ArgAddress(catA), contracts.ArgUint(saltA),
			contracts.ArgAddress(catB), contracts.ArgUint(saltB)), 0)
		var id uint64
		for _, log := range rec.Logs {
			if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicPregnant {
				id = u256.FromBytes(log.Data).Uint64()
			}
		}
		rec = h.call(1, f.breeder, f.registry, contracts.EncodeCall("giveBirth", contracts.ArgUint(id)), 0)
		child, err := contracts.AsAddress(lastKittyCreated(rec))
		if err != nil {
			t.Fatal(err)
		}
		salt := u256.FromBytes(h.view(1, f.breeder.Address(), child, contracts.EncodeCall("salt"))).Uint64()
		return child, salt
	}
	c1, s1 := makeChild()
	c2, s2 := makeChild()
	h.callExpectFail(1, f.breeder, f.registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(c1), contracts.ArgUint(s1),
		contracts.ArgAddress(c2), contracts.ArgUint(s2)), "siblings")
	// Parent-child is also refused.
	h.callExpectFail(1, f.breeder, f.registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(c1), contracts.ArgUint(s1),
		contracts.ArgAddress(catA), contracts.ArgUint(saltA)), "parent")
}

func TestKittyMovesAcrossChains(t *testing.T) {
	f := newKittyFixture(t)
	h := f.h
	cat, _ := f.promo(f.breeder, 7)
	genesBefore := h.view(1, f.breeder.Address(), cat, contracts.EncodeCall("genes"))

	h.moveContract(1, 2, f.breeder, cat)

	genesAfter := h.view(2, f.breeder.Address(), cat, contracts.EncodeCall("genes"))
	if string(genesBefore) != string(genesAfter) {
		t.Fatal("genes must survive the move")
	}
	// The cat can change owners on the new chain.
	h.call(2, f.breeder, cat, contracts.EncodeCall("transferOwner", contracts.ArgAddress(h.users[2].Address())), 0)
}

// --- PeggedToken guards (the full Fig. 3 cycle runs in the relay e2e) ---

func TestPeggedTokenGuards(t *testing.T) {
	h := newHarness(t, 2)
	alice := h.users[0]
	relayAddr := h.deploy(1, alice, contracts.TokenRelayName, nil, 0)

	// create without attached currency fails.
	h.callExpectFail(1, alice, relayAddr, contracts.EncodeCall("create",
		contracts.ArgUint(2), contracts.ArgAddress(alice.Address())), "attached")

	// create with currency spawns a locked pegged token.
	rec := h.call(1, alice, relayAddr, contracts.EncodeCall("create",
		contracts.ArgUint(2), contracts.ArgAddress(alice.Address())), 5000)
	if !rec.Succeeded() {
		t.Fatal(rec.Err)
	}
	// The pegged contract is locked towards chain 2 and holds the 5000.
	db := h.chains[1].StateDB()
	var pegged hashing.Address
	found := false
	// Find it via its location (the only contract locked towards chain 2).
	for i := 0; i < 256 && !found; i++ {
		// The relay returned the address in the receipt's return data — but
		// receipts do not carry return data; recover it deterministically:
		// salt 0, creator relayAddr.
		pegged = hashing.Create2Address(0, relayAddr, [32]byte{}, hashing.Sum(evm.NativeCode(contracts.PeggedTokenName)))
		found = true
	}
	if db.GetLocation(pegged) != 2 {
		t.Fatalf("pegged token not locked: %s", db.GetLocation(pegged))
	}
	if got := db.GetBalance(pegged); !got.Eq(u256.FromUint64(5000)) {
		t.Fatalf("pegged balance = %s", got)
	}
	// Minting on the home chain is refused (reads on a locked contract are
	// allowed, so the guard is reachable and fires before any write).
	h.callExpectFail(1, alice, pegged, contracts.EncodeCall("mint"), "home chain")
}

func TestMovedAtResidencyGuard(t *testing.T) {
	// A registry with residency: a fresh account cannot move twice quickly.
	registry := contracts.NewRegistryWithResidency(3600)
	h := newHarness(t, 1)
	_ = registry
	alice := h.users[0]
	// Build a one-chain harness view with the residency registry: simplest
	// is a direct chain.
	cfg := chain.Config{
		ChainID: 7, TreeKind: trie.KindMPT, Schedule: evm.EthereumSchedule(),
		BlockGasLimit: 100_000_000, MaxBlockTxs: 100, ConfirmationDepth: 6,
		Natives: registry, PoolLimit: 1000,
	}
	c, err := chain.New(cfg, core.NewHeaderStore(), func(db *state.DB) {
		db.AddBalance(alice.Address(), u256.FromUint64(fund))
	})
	if err != nil {
		t.Fatal(err)
	}
	runTx := func(nonce uint64, kind types.TxKind, to hashing.Address, data []byte, now uint64) *types.Receipt {
		tx := &types.Transaction{
			ChainID: 7, Nonce: nonce, Kind: kind, To: to,
			GasLimit: 50_000_000, GasPrice: u256.FromUint64(2), Data: data,
		}
		if err := tx.Sign(alice); err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		_, receipts := c.ApplyBlock(c.ProposeBatch(), now, chain.ProposerAddress(7, 0))
		return receipts[0]
	}
	rec := runTx(0, types.TxCreate, hashing.Address{},
		evm.NativeDeployment(contracts.StoreName, contracts.StoreConstructorArgs(alice.Address(), 1)), 1000)
	if !rec.Succeeded() {
		t.Fatal(rec.Err)
	}
	store := rec.Created
	// Simulate a moveFinish stamp by moving... simpler: the movedAt slot is
	// zero (created, never moved), so now-movedAt = 1000 < 3600: refused.
	rec = runTx(1, types.TxCall, store, core.MoveToInput(2), 1000)
	if rec.Succeeded() || !strings.Contains(rec.Err, "residency") {
		t.Fatalf("expected residency refusal, got %+v", rec)
	}
	// After enough simulated time, the move is allowed.
	rec = runTx(2, types.TxCall, store, core.MoveToInput(2), 5000)
	if !rec.Succeeded() {
		t.Fatalf("move after residency: %s", rec.Err)
	}
}
