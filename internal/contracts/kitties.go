package contracts

import (
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Registry names of the ScalableKitties contracts.
const (
	KittyRegistryName = "ScalableKitties"
	KittyName         = "Kitty"
)

// Event topics.
var (
	TopicKittyCreated = hashing.Sum([]byte("KittyCreated(address)"))
	TopicPregnant     = hashing.Sum([]byte("Pregnant(uint)"))
)

// Registry storage slots (application region 0x03).
func kittySlot(n byte) evm.Word {
	var w evm.Word
	w[0] = 0x03
	w[31] = n
	return w
}

var (
	slotKittySalt     = kittySlot(1)
	slotPregnancySeq  = kittySlot(2)
	prefixPregnancy   = byte(0xB0) // pregnancy id -> packed record
	prefixPregOwner   = byte(0xB1) // pregnancy id -> child owner
	prefixPregParentA = byte(0xB2)
	prefixPregParentB = byte(0xB3)
)

// KittyRegistry is the ScalableKitties master contract (§V-B): it creates
// promotional cats, validates breeding requests (ownership, siring
// approval, the no-siblings rule), and — in a second transaction, as in
// CryptoKitties — gives birth to a new Kitty contract. Each cat is its own
// movable contract, so cats rather than the whole game migrate between
// shards.
type KittyRegistry struct{}

var _ evm.Native = KittyRegistry{}

// Name implements evm.Native.
func (KittyRegistry) Name() string { return KittyRegistryName }

// CodeSize emulates the deployed game contract.
func (KittyRegistry) CodeSize() int { return 8000 }

// KittyRegistryConstructorArgs builds OnCreate args.
func KittyRegistryConstructorArgs(owner hashing.Address) []byte {
	return EncodeCall("init", ArgAddress(owner))
}

// OnCreate stores the game owner.
func (KittyRegistry) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: registry constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 1); err != nil {
		return err
	}
	owner, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	return SetOwner(call, owner)
}

// Run dispatches registry methods.
func (kr KittyRegistry) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "createPromoKitty":
		// createPromoKitty(genes, owner): only the game owner mints promos.
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		genes, err := AsWord(args[0])
		if err != nil {
			return nil, err
		}
		owner, err := AsAddress(args[1])
		if err != nil {
			return nil, err
		}
		addr, err := kr.spawn(call, owner, genes, hashing.ZeroAddress, hashing.ZeroAddress)
		if err != nil {
			return nil, err
		}
		return RetAddress(addr), nil
	case "breed":
		// breed(catA, saltA, catB, saltB): caller must own A; B must allow
		// siring; siblings cannot mate. Records a pregnancy.
		if err := wantArgs(method, args, 4); err != nil {
			return nil, err
		}
		return kr.breed(call, args)
	case "giveBirth":
		// giveBirth(pregnancyID): creates the child Kitty contract — a new
		// contract creation paying code-deposit gas again (Fig. 9).
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		id, err := AsUint(args[0])
		if err != nil {
			return nil, err
		}
		return kr.giveBirth(call, id)
	default:
		return nil, fmt.Errorf("%w: ScalableKitties.%s", ErrUnknownCall, method)
	}
}

// spawn creates a Kitty contract with the next salt.
func (kr KittyRegistry) spawn(call *evm.NativeCall, owner hashing.Address, genes evm.Word, parentA, parentB hashing.Address) (hashing.Address, error) {
	saltW, err := call.GetStorage(slotKittySalt)
	if err != nil {
		return hashing.Address{}, err
	}
	counter := uintOfWord(saltW)
	if err := call.SetStorage(slotKittySalt, wordOfUint(counter+1)); err != nil {
		return hashing.Address{}, err
	}
	// Registries are deployed at the same address on every shard; the chain
	// id in the salt keeps cat identifiers globally unique (§III-G(a)).
	salt := uniqueSalt(call.ChainID(), counter)
	addr, err := call.CreateNative(KittyName, saltWord(salt),
		KittyConstructorArgs(owner, genes, parentA, parentB, salt), u256.Zero())
	if err != nil {
		return hashing.Address{}, fmt.Errorf("spawn kitty: %w", err)
	}
	if err := call.Emit([]hashing.Hash{TopicKittyCreated}, addr.Bytes()); err != nil {
		return hashing.Address{}, err
	}
	return addr, nil
}

// breed validates the pair and records a pregnancy; the child is created by
// a later giveBirth transaction.
func (kr KittyRegistry) breed(call *evm.NativeCall, args [][]byte) ([]byte, error) {
	catA, err := AsAddress(args[0])
	if err != nil {
		return nil, err
	}
	saltA, err := AsUint(args[1])
	if err != nil {
		return nil, err
	}
	catB, err := AsAddress(args[2])
	if err != nil {
		return nil, err
	}
	saltB, err := AsUint(args[3])
	if err != nil {
		return nil, err
	}
	// Origin attestation: both cats were created by this registry.
	for _, pair := range []struct {
		cat  hashing.Address
		salt uint64
	}{{catA, saltA}, {catB, saltB}} {
		expected, err := expectedSibling(call, call.Self(), pair.salt, KittyName)
		if err != nil {
			return nil, err
		}
		if expected != pair.cat {
			return nil, fmt.Errorf("%w: %s is not kitty #%d", ErrBadOrigin, pair.cat, pair.salt)
		}
	}
	// The caller must own cat A.
	ownerA, err := kittyOwner(call, catA)
	if err != nil {
		return nil, err
	}
	if ownerA != call.Caller() {
		return nil, fmt.Errorf("%w: breed caller does not own %s", ErrNotOwner, catA)
	}
	// Cat B must permit siring with A (same owner, or explicit approval).
	canRet, err := call.StaticCall(catB, EncodeCall("canSireWith", ArgAddress(catA), ArgAddress(call.Caller())))
	if err != nil {
		return nil, err
	}
	if len(canRet) != 1 || canRet[0] != 1 {
		return nil, fmt.Errorf("contracts: %s has not approved siring with %s", catB, catA)
	}
	// Sibling check: cats sharing a parent (or parent-child pairs) cannot
	// mate.
	if err := kr.checkLineage(call, catA, catB); err != nil {
		return nil, err
	}
	genesA, err := kittyGenes(call, catA)
	if err != nil {
		return nil, err
	}
	genesB, err := kittyGenes(call, catB)
	if err != nil {
		return nil, err
	}
	childGenes := mixGenes(genesA, genesB)

	seqW, err := call.GetStorage(slotPregnancySeq)
	if err != nil {
		return nil, err
	}
	id := uintOfWord(seqW) + 1
	if err := call.SetStorage(slotPregnancySeq, wordOfUint(id)); err != nil {
		return nil, err
	}
	idKey := wordOfUint(id)
	if err := call.SetStorage(mapSlot(prefixPregnancy, idKey[:]), childGenes); err != nil {
		return nil, err
	}
	if err := call.SetStorage(mapSlot(prefixPregOwner, idKey[:]), wordOfAddress(ownerA)); err != nil {
		return nil, err
	}
	if err := call.SetStorage(mapSlot(prefixPregParentA, idKey[:]), wordOfAddress(catA)); err != nil {
		return nil, err
	}
	if err := call.SetStorage(mapSlot(prefixPregParentB, idKey[:]), wordOfAddress(catB)); err != nil {
		return nil, err
	}
	if err := call.Emit([]hashing.Hash{TopicPregnant}, idKey[:]); err != nil {
		return nil, err
	}
	return RetUint(id), nil
}

// giveBirth turns a recorded pregnancy into a new Kitty contract.
func (kr KittyRegistry) giveBirth(call *evm.NativeCall, id uint64) ([]byte, error) {
	idKey := wordOfUint(id)
	genes, err := call.GetStorage(mapSlot(prefixPregnancy, idKey[:]))
	if err != nil {
		return nil, err
	}
	if genes == (evm.Word{}) {
		return nil, fmt.Errorf("contracts: no pregnancy #%d", id)
	}
	ownerW, err := call.GetStorage(mapSlot(prefixPregOwner, idKey[:]))
	if err != nil {
		return nil, err
	}
	parentAW, err := call.GetStorage(mapSlot(prefixPregParentA, idKey[:]))
	if err != nil {
		return nil, err
	}
	parentBW, err := call.GetStorage(mapSlot(prefixPregParentB, idKey[:]))
	if err != nil {
		return nil, err
	}
	// Consume the pregnancy.
	if err := call.SetStorage(mapSlot(prefixPregnancy, idKey[:]), evm.Word{}); err != nil {
		return nil, err
	}
	addr, err := kr.spawn(call, addressOfWord(ownerW), genes, addressOfWord(parentAW), addressOfWord(parentBW))
	if err != nil {
		return nil, err
	}
	return RetAddress(addr), nil
}

// checkLineage rejects sibling and parent-child pairs.
func (kr KittyRegistry) checkLineage(call *evm.NativeCall, catA, catB hashing.Address) error {
	pa, err := kittyParents(call, catA)
	if err != nil {
		return err
	}
	pb, err := kittyParents(call, catB)
	if err != nil {
		return err
	}
	for _, x := range pa {
		if x.IsZero() {
			continue
		}
		for _, y := range pb {
			if x == y {
				return fmt.Errorf("contracts: %s and %s are siblings", catA, catB)
			}
		}
		if x == catB {
			return fmt.Errorf("contracts: %s is a parent of %s", catB, catA)
		}
	}
	for _, y := range pb {
		if y == catA {
			return fmt.Errorf("contracts: %s is a parent of %s", catA, catB)
		}
	}
	return nil
}

func kittyOwner(call *evm.NativeCall, cat hashing.Address) (hashing.Address, error) {
	ret, err := call.StaticCall(cat, EncodeCall("owner"))
	if err != nil {
		return hashing.Address{}, err
	}
	return AsAddress(ret)
}

func kittyGenes(call *evm.NativeCall, cat hashing.Address) (evm.Word, error) {
	ret, err := call.StaticCall(cat, EncodeCall("genes"))
	if err != nil {
		return evm.Word{}, err
	}
	return AsWord(ret)
}

func kittyParents(call *evm.NativeCall, cat hashing.Address) ([2]hashing.Address, error) {
	ret, err := call.StaticCall(cat, EncodeCall("parents"))
	if err != nil {
		return [2]hashing.Address{}, err
	}
	if len(ret) != 2*hashing.AddressSize {
		return [2]hashing.Address{}, fmt.Errorf("%w: parents view", ErrBadCall)
	}
	var out [2]hashing.Address
	copy(out[0][:], ret[:hashing.AddressSize])
	copy(out[1][:], ret[hashing.AddressSize:])
	return out, nil
}

// mixGenes derives child genes deterministically from the parents.
func mixGenes(a, b evm.Word) evm.Word {
	h := hashing.Sum(a[:], b[:])
	var w evm.Word
	copy(w[:], h[:])
	return w
}

// Kitty storage slots.
var (
	slotGenes        = kittySlot(10)
	slotParentA      = kittySlot(11)
	slotParentB      = kittySlot(12)
	slotSireApproved = kittySlot(13)
)

// Kitty is one cat: a movable contract holding genes, lineage, and siring
// approval. Moving a cat to another shard moves only this contract — the
// granularity argument of the paper's introduction.
type Kitty struct {
	Residency uint64
}

var _ evm.Native = Kitty{}

// Name implements evm.Native.
func (Kitty) Name() string { return KittyName }

// CodeSize emulates the deployed cat contract.
func (Kitty) CodeSize() int { return 4000 }

// KittyConstructorArgs builds OnCreate args.
func KittyConstructorArgs(owner hashing.Address, genes evm.Word, parentA, parentB hashing.Address, salt uint64) []byte {
	return EncodeCall("init",
		ArgAddress(owner), ArgWord(genes), ArgAddress(parentA), ArgAddress(parentB), ArgUint(salt))
}

// OnCreate stores the cat's identity.
func (Kitty) OnCreate(call *evm.NativeCall, args []byte) error {
	method, argv, err := DecodeCall(args)
	if err != nil || method != "init" {
		return fmt.Errorf("%w: kitty constructor", ErrBadCall)
	}
	if err := wantArgs("init", argv, 5); err != nil {
		return err
	}
	owner, err := AsAddress(argv[0])
	if err != nil {
		return err
	}
	genes, err := AsWord(argv[1])
	if err != nil {
		return err
	}
	parentA, err := AsAddress(argv[2])
	if err != nil {
		return err
	}
	parentB, err := AsAddress(argv[3])
	if err != nil {
		return err
	}
	salt, err := AsUint(argv[4])
	if err != nil {
		return err
	}
	if err := SetOwner(call, owner); err != nil {
		return err
	}
	if err := storeParentAndSalt(call, salt); err != nil {
		return err
	}
	if err := call.SetStorage(slotGenes, genes); err != nil {
		return err
	}
	if !parentA.IsZero() {
		if err := call.SetStorage(slotParentA, wordOfAddress(parentA)); err != nil {
			return err
		}
	}
	if !parentB.IsZero() {
		if err := call.SetStorage(slotParentB, wordOfAddress(parentB)); err != nil {
			return err
		}
	}
	return nil
}

// Run dispatches Kitty methods.
func (k Kitty) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	if handled, err := (Movable{MinResidency: k.Residency}).Dispatch(call, input); handled {
		return nil, err
	}
	method, args, err := DecodeCall(input)
	if err != nil {
		return nil, err
	}
	switch method {
	case "owner":
		owner, err := Owner(call)
		if err != nil {
			return nil, err
		}
		return RetAddress(owner), nil
	case "genes":
		genes, err := call.GetStorage(slotGenes)
		if err != nil {
			return nil, err
		}
		return genes[:], nil
	case "salt":
		_, salt, err := parentAndSalt(call)
		if err != nil {
			return nil, err
		}
		return RetUint(salt), nil
	case "parents":
		pa, err := call.GetStorage(slotParentA)
		if err != nil {
			return nil, err
		}
		pb, err := call.GetStorage(slotParentB)
		if err != nil {
			return nil, err
		}
		out := append(addressOfWord(pa).Bytes(), addressOfWord(pb).Bytes()...)
		return out, nil
	case "approveSiring":
		// approveSiring(cat): the owner permits this cat to be sired by cat.
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		cat, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		return RetBool(true), call.SetStorage(slotSireApproved, wordOfAddress(cat))
	case "canSireWith":
		// canSireWith(cat, catOwner): same owner, or cat was approved.
		if err := wantArgs(method, args, 2); err != nil {
			return nil, err
		}
		cat, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		catOwner, err := AsAddress(args[1])
		if err != nil {
			return nil, err
		}
		owner, err := Owner(call)
		if err != nil {
			return nil, err
		}
		if owner == catOwner {
			return RetBool(true), nil
		}
		approvedW, err := call.GetStorage(slotSireApproved)
		if err != nil {
			return nil, err
		}
		return RetBool(addressOfWord(approvedW) == cat), nil
	case "transferOwner":
		if err := wantArgs(method, args, 1); err != nil {
			return nil, err
		}
		if err := requireOwner(call); err != nil {
			return nil, err
		}
		newOwner, err := AsAddress(args[0])
		if err != nil {
			return nil, err
		}
		return RetBool(true), SetOwner(call, newOwner)
	default:
		return nil, fmt.Errorf("%w: Kitty.%s", ErrUnknownCall, method)
	}
}
