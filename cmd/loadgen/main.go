// Command loadgen drives a live multi-chain universe through its real front
// door: per-chain JSON-over-HTTP RPC servers, consensus over loopback TCP
// sockets, and a wall-clock event driver. It pre-signs a keyed-user
// workload offline, fires it open-loop at the RPC endpoints at a configured
// rate, waits for every transaction to commit, and reports wall-clock
// submission latency quantiles (client- and server-side) plus throughput.
//
// With -verify (the default) it then replays the exact same pre-signed
// workload on the deterministic discrete-event path — same genesis, same
// chains, virtual time — and requires the final state root of every chain
// to match the socket run bit for bit. The two paths share all state
// transition code; only transports and clocks differ, so a mismatch means
// a real concurrency bug.
//
//	go run ./cmd/loadgen -txs 100000 -rate 5000
//
// Exit status is non-zero if any valid submission is rejected, no
// wall-clock latency histogram was recorded, the workload fails to drain,
// or the replayed state roots differ.
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/rpc"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

func main() {
	var (
		txCount    = flag.Int("txs", 10_000, "total pre-signed transactions")
		shards     = flag.Int("chains", 2, "number of Burrow shards")
		users      = flag.Int("users", 32, "signing users (each owns one nonce sequence)")
		rate       = flag.Float64("rate", 0, "target submissions per second, 0 = as fast as possible")
		validators = flag.Int("validators", 4, "validators per shard")
		interval   = flag.Duration("interval", 500*time.Millisecond, "block interval")
		blockTxs   = flag.Int("blocktxs", 2000, "max transactions per block")
		timeout    = flag.Duration("timeout", 5*time.Minute, "drain timeout after submission")
		verify     = flag.Bool("verify", true, "replay on the discrete-event path and compare state roots")
	)
	flag.Parse()
	if err := run(*txCount, *shards, *users, *rate, *validators, *interval, *blockTxs, *timeout, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// sink receives every transfer; its final balance is the committed tx count.
var sink = hashing.AddressFromBytes([]byte("loadgen-sink"))

// userKey derives the i-th load-generator key pair (distinct from the
// universe's client key range).
func userKey(i int) *keys.KeyPair { return keys.Deterministic(uint64(500_000 + i)) }

// universeConfig builds the shard layout shared by the socket run and the
// discrete-event replay: identical genesis (funded users plus pre-created
// proposer accounts) so identical workloads reach identical roots.
func universeConfig(shards, users, validators, blockTxs int, interval time.Duration) universe.Config {
	registry := contracts.NewRegistry()
	cfg := universe.Config{
		Clients:     0,
		SubmitDelay: 50 * time.Millisecond,
		RelayDelay:  50 * time.Millisecond,
		NetSeed:     7,
		ExtraGenesis: func(id hashing.ChainID, db *state.DB) {
			for i := 0; i < users; i++ {
				db.AddBalance(userKey(i).Address(), u256.FromUint64(1<<40))
			}
			// Pre-create every proposer account: blocks credit fee income to
			// ProposerAddress(chain, height%10), and with zero gas prices the
			// credit is zero — but crediting creates the record. Creating all
			// ten at genesis makes the final root independent of how many
			// blocks each run needed.
			for k := 0; k < 10; k++ {
				db.AddBalance(chain.ProposerAddress(id, k), u256.Zero())
			}
		},
	}
	for s := 0; s < shards; s++ {
		spec := universe.BurrowSpec(hashing.ChainID(s+1), registry, int64(100+s))
		spec.Validators = validators
		spec.Config.BlockInterval = interval
		spec.Config.MaxBlockTxs = blockTxs
		spec.Config.BlockGasLimit = 1_000_000_000
		spec.Seed = int64(100 + s)
		cfg.Specs = append(cfg.Specs, spec)
	}
	return cfg
}

// userLoad is one user's pre-signed workload, bound to one chain.
type userLoad struct {
	chainID hashing.ChainID
	txs     []*types.Transaction
}

// presign builds and signs the whole workload offline, before any server
// exists: users round-robin across chains, each holding a dense nonce
// sequence of unit transfers to the sink. Signing fans out on the shared
// crypto pool.
func presign(cfg universe.Config, txCount, users int) []*userLoad {
	loads := make([]*userLoad, users)
	for u := 0; u < users; u++ {
		cid := cfg.Specs[u%len(cfg.Specs)].Config.ChainID
		n := txCount / users
		if u < txCount%users {
			n++
		}
		load := &userLoad{chainID: cid, txs: make([]*types.Transaction, 0, n)}
		kp := userKey(u)
		for nonce := 0; nonce < n; nonce++ {
			tx := &types.Transaction{
				ChainID:  cid,
				Nonce:    uint64(nonce),
				Kind:     types.TxCall,
				To:       sink,
				Value:    u256.FromUint64(1),
				GasLimit: 100_000,
				GasPrice: u256.Zero(),
			}
			tx.SignOn(kp, keys.SharedPool())
			load.txs = append(load.txs, tx)
		}
		loads[u] = load
	}
	for _, load := range loads {
		for _, tx := range load.txs {
			if err := tx.WaitSig(); err != nil {
				panic(err) // deterministic keys cannot fail to sign
			}
		}
	}
	return loads
}

func run(txCount, shards, users int, rate float64, validators int,
	interval time.Duration, blockTxs int, timeout time.Duration, verify bool) error {
	if users < 1 || shards < 1 || txCount < users {
		return fmt.Errorf("need txs >= users >= 1 and chains >= 1 (got txs=%d users=%d chains=%d)",
			txCount, users, shards)
	}
	cfg := universeConfig(shards, users, validators, blockTxs, interval)

	signStart := time.Now()
	loads := presign(cfg, txCount, users)
	fmt.Printf("pre-signed %d txs for %d users on %d chains in %v\n",
		txCount, users, shards, time.Since(signStart).Round(time.Millisecond))

	// The socket run: RPC front doors, TCP consensus, wall-clock driver.
	wallCfg := cfg
	wallCfg.RPC = true
	wallCfg.Realtime = true
	wallCfg.TCPWan = true
	u, err := universe.New(wallCfg)
	if err != nil {
		return err
	}
	u.Start()
	stop := make(chan struct{})
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		u.Driver().Run(stop)
	}()

	clientReg := metrics.NewRegistry()
	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * users,
		MaxIdleConnsPerHost: 2 * users,
	}}

	var rejected, known, submitted atomic.Uint64
	var firstErr atomic.Value
	fireStart := time.Now()
	var wg sync.WaitGroup
	for ui, load := range loads {
		wg.Add(1)
		go func(ui int, load *userLoad) {
			defer wg.Done()
			addr := u.RPCAddr(load.chainID)
			for j, tx := range load.txs {
				if rate > 0 {
					// Open-loop pacing: the j-th tx of user ui occupies global
					// slot j*users+ui, fired at slot/rate seconds — the schedule
					// does not slow down when the server does.
					due := fireStart.Add(time.Duration(float64(j*users+ui) / rate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				txStart := time.Now()
				resp, err := postSubmit(httpClient, addr, tx)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("user %d: %w", ui, err))
					return
				}
				clientReg.ObserveWall("loadgen.submit.wall", time.Since(txStart))
				switch {
				case !resp.Ok:
					rejected.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("user %d tx %d rejected: %s", ui, j, resp.Error))
				case resp.Known:
					known.Add(1)
				}
				submitted.Add(1)
			}
		}(ui, load)
	}
	wg.Wait()
	fireElapsed := time.Since(fireStart)

	// Drain: per-user nonce sequences commit in order, so the last tx's
	// receipt implies the whole user landed.
	drainErr := waitDrain(httpClient, u, loads, timeout)
	drainElapsed := time.Since(fireStart)

	close(stop)
	<-driverDone

	roots := make(map[hashing.ChainID]hashing.Hash, shards)
	for _, id := range u.ChainIDs() {
		roots[id] = u.Chain(id).StateDB().Root()
	}
	heights := make(map[hashing.ChainID]uint64, shards)
	for _, id := range u.ChainIDs() {
		heights[id] = u.Chain(id).Head().Height
	}

	fmt.Printf("submitted %d txs in %v (%.0f tx/s), drained in %v\n",
		submitted.Load(), fireElapsed.Round(time.Millisecond),
		float64(submitted.Load())/fireElapsed.Seconds(), drainElapsed.Round(time.Millisecond))
	for _, id := range u.ChainIDs() {
		root := roots[id]
		fmt.Printf("chain %s: height %d, root %x…\n", id, heights[id], root[:8])
	}

	submitHist := u.WallMetrics().Histogram("rpc.submit.wall")
	printHist := func(name string, h *metrics.Histogram) {
		if h == nil || h.Count() == 0 {
			fmt.Printf("%s: no samples\n", name)
			return
		}
		fmt.Printf("%s: n=%d p50=%v p95=%v p99=%v\n", name, h.Count(),
			h.Quantile(0.50).Round(time.Microsecond),
			h.Quantile(0.95).Round(time.Microsecond),
			h.Quantile(0.99).Round(time.Microsecond))
	}
	printHist("rpc.submit.wall", submitHist)
	printHist("loadgen.submit.wall", clientReg.Histogram("loadgen.submit.wall"))
	printHist("rpc.receipt.wall", u.WallMetrics().Histogram("rpc.receipt.wall"))

	if err := u.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	if rejected.Load() > 0 {
		return fmt.Errorf("%d valid submissions rejected", rejected.Load())
	}
	if known.Load() > 0 {
		return fmt.Errorf("%d submissions unexpectedly reported known", known.Load())
	}
	if submitHist == nil || submitHist.Count() == 0 {
		return fmt.Errorf("no wall-clock submit latency samples recorded")
	}

	if !verify {
		return nil
	}
	return replayAndCompare(cfg, loads, roots)
}

// postSubmit fires one signed transaction at a chain's RPC endpoint and
// records the client-observed wall latency.
func postSubmit(c *http.Client, addr string, tx *types.Transaction) (*rpc.Response, error) {
	body, err := json.Marshal(&rpc.Request{Method: "submit", Tx: hex.EncodeToString(tx.Encode())})
	if err != nil {
		return nil, err
	}
	httpResp, err := c.Post("http://"+addr+"/", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	var resp rpc.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// waitDrain polls each user's final receipt over RPC until every sequence
// committed or the timeout expires.
func waitDrain(c *http.Client, u *universe.Universe, loads []*userLoad, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, load := range loads {
		last := load.txs[len(load.txs)-1]
		id := last.ID()
		req, err := json.Marshal(&rpc.Request{Method: "receipt", Tx: hex.EncodeToString(id[:])})
		if err != nil {
			return err
		}
		addr := u.RPCAddr(load.chainID)
		for {
			httpResp, err := c.Post("http://"+addr+"/", "application/json", bytes.NewReader(req))
			if err != nil {
				return err
			}
			var resp rpc.Response
			derr := json.NewDecoder(httpResp.Body).Decode(&resp)
			httpResp.Body.Close()
			if derr != nil {
				return derr
			}
			if resp.Found {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("drain timeout: tx %x on %s not committed after %v",
					id[:8], load.chainID, timeout)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// replayAndCompare reruns the identical pre-signed workload on the
// deterministic discrete-event path and compares every chain's final state
// root with the socket run's.
func replayAndCompare(cfg universe.Config, loads []*userLoad, want map[hashing.ChainID]hashing.Hash) error {
	u, err := universe.New(cfg)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer u.Close()
	u.Start()
	for _, load := range loads {
		c := u.Chain(load.chainID)
		for _, tx := range load.txs {
			if err := c.SubmitTx(tx); err != nil {
				return fmt.Errorf("replay submit: %w", err)
			}
		}
	}
	committed := func() bool {
		for _, load := range loads {
			last := load.txs[len(load.txs)-1]
			if _, ok := u.Chain(load.chainID).Receipt(last.ID()); !ok {
				return false
			}
		}
		return true
	}
	if !u.RunUntil(committed, 2*time.Hour) {
		return fmt.Errorf("replay: workload did not drain in simulated time")
	}
	for _, id := range u.ChainIDs() {
		got := u.Chain(id).StateDB().Root()
		if got != want[id] {
			return fmt.Errorf("replay root mismatch on chain %s: socket run %x, discrete-event run %x",
				id, want[id], got)
		}
		fmt.Printf("chain %s: replay root matches (%x…)\n", id, got[:8])
	}
	return nil
}
