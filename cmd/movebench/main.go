// Command movebench regenerates the paper's evaluation figures.
//
// Usage:
//
//	movebench [-experiment all|fig5|fig6|fig7|fig8|fig9|ablations|rebalance|sharded|chaos|chaossweep|byzantine] [-scale 1.0]
//
// Scale shrinks population sizes and measurement windows uniformly (0.08 is
// the CI scale; 1.0 approximates the paper's populations). Results print as
// the tables described in EXPERIMENTS.md.
//
// The chaos experiment drives repeated cross-chain moves while every
// message path drops and duplicates traffic (-drop, -dup, -chaos-seed,
// -moves), printing per-move latency and the fault/recovery counters.
// chaossweep runs the default fault-rate grid with each configuration on
// its own goroutine.
//
// The byzantine experiment adds active adversaries to the chaos run:
// in-flight byte corruption on every path (-corrupt), an equivocating
// validator (-equivocators), and a client that replays and forges Move2
// proofs after every move. The run fails loudly if any attack is accepted
// or consensus stalls; its counters and final state roots are
// byte-identical for the same -chaos-seed.
//
// -metrics adds per-stage Move latency histograms (Move1 commit, p-wait,
// Move2 commit) and queue-depth gauges to the chaos and chaossweep output;
// -trace <file> additionally dumps one JSON Lines span per protocol stage
// and event of the chaos run. Both observe simulated time only: the
// simulated results are bit-identical with the layer on or off.
//
// -cpuprofile <file> and -memprofile <file> write pprof profiles of the
// selected experiment (the CPU profile covers the whole run; the heap
// profile is taken after a final GC), for go tool pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"scmove/internal/bench"
	"scmove/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: all, fig5, fig6, fig7, fig8, fig9, ablations, rebalance, sharded, chaos, chaossweep, byzantine")
	scale := flag.Float64("scale", 1.0, "population/duration scale (0.08 = CI, 1.0 = paper-like)")
	flag.Float64Var(&chaosCfg.DropRate, "drop", chaosCfg.DropRate, "chaos: per-message drop probability on every link")
	flag.Float64Var(&chaosCfg.DupRate, "dup", chaosCfg.DupRate, "chaos: per-message duplication probability on every link")
	flag.Int64Var(&chaosCfg.Seed, "chaos-seed", chaosCfg.Seed, "chaos: fault RNG seed (same seed reproduces the run)")
	flag.IntVar(&chaosCfg.Moves, "moves", chaosCfg.Moves, "chaos: number of back-and-forth moves to drive")
	flag.Float64Var(&byzCfg.CorruptRate, "corrupt", byzCfg.CorruptRate, "byzantine: per-message in-flight corruption probability on every link")
	flag.IntVar(&byzCfg.Equivocators, "equivocators", byzCfg.Equivocators, "byzantine: equivocating validators per BFT cluster")
	flag.BoolVar(&metricsOn, "metrics", false, "chaos/chaossweep/byzantine: render stage-latency histograms and gauges")
	flag.StringVar(&traceFile, "trace", "", "chaos: dump a JSONL span trace to this file (implies -metrics)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after final GC) to this file")
	flag.Parse()
	chaosCfg.Metrics = metricsOn || traceFile != ""
	chaosCfg.Trace = traceFile != ""
	// The byzantine cell shares the chaos flags but keeps its own defaults
	// (5% faults, not 20%), so only explicitly set flags carry over.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "drop":
			byzCfg.DropRate = chaosCfg.DropRate
		case "dup":
			byzCfg.DupRate = chaosCfg.DupRate
		case "chaos-seed":
			byzCfg.Seed = chaosCfg.Seed
		case "moves":
			byzCfg.Moves = chaosCfg.Moves
		}
	})
	byzCfg.Metrics = metricsOn
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "movebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "movebench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(*experiment, bench.Scale(*scale)); err != nil {
		fmt.Fprintln(os.Stderr, "movebench:", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "movebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "movebench:", err)
			os.Exit(1)
		}
	}
}

var (
	chaosCfg  = bench.DefaultChaosConfig()
	byzCfg    = bench.DefaultByzantineConfig()
	metricsOn bool
	traceFile string
)

func run(experiment string, scale bench.Scale) error {
	runs := map[string]func(bench.Scale) error{
		"fig5":       runFig5,
		"fig6":       runFig6,
		"fig7":       runFig7,
		"fig8":       runFig89,
		"fig9":       runFig89,
		"ablations":  runAblations,
		"rebalance":  runRebalance,
		"chaos":      runChaos,
		"chaossweep": runChaosSweep,
		"byzantine":  runByzantine,
		"sharded":    runSharded,
	}
	if experiment == "all" {
		for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "ablations", "rebalance", "sharded"} {
			if err := runs[name](scale); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := runs[experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return fn(scale)
}

func timed(name string, fn func() error) error {
	start := time.Now()
	if err := fn(); err != nil {
		return err
	}
	fmt.Printf("[%s finished in %v wall-clock]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func runFig5(scale bench.Scale) error {
	return timed("fig5", func() error {
		res, err := bench.RunFig5(scale)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
}

func runFig6(scale bench.Scale) error {
	return timed("fig6", func() error {
		res, err := bench.RunFig6(scale)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
}

func runFig7(scale bench.Scale) error {
	return timed("fig7", func() error {
		for _, retries := range []bool{false, true} {
			res, err := bench.RunFig7(scale, retries)
			if err != nil {
				return err
			}
			fmt.Println(res)
		}
		return nil
	})
}

func runFig89(bench.Scale) error {
	return timed("fig8+fig9", func() error {
		res, err := bench.RunFig8And9()
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
}

func runAblations(bench.Scale) error {
	return timed("ablations", func() error {
		rows, err := bench.RunAblationGranularity([]uint64{1, 10, 100, 1000})
		if err != nil {
			return err
		}
		fmt.Println(bench.GranularityTable(rows))
		twopc, err := bench.RunAblation2PC()
		if err != nil {
			return err
		}
		fmt.Println(twopc)
		return nil
	})
}

func runChaos(bench.Scale) error {
	return timed("chaos", func() error {
		res, err := bench.RunChaos(chaosCfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if traceFile != "" {
			f, err := os.Create(traceFile)
			if err != nil {
				return err
			}
			if err := res.Registry.WriteTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("[trace: %d spans -> %s]\n\n", len(res.Registry.Spans()), traceFile)
		}
		return nil
	})
}

func runByzantine(bench.Scale) error {
	return timed("byzantine", func() error {
		res, err := bench.RunByzantine(byzCfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
}

func runChaosSweep(bench.Scale) error {
	return timed("chaossweep", func() error {
		cfgs := bench.DefaultChaosSweep()
		for i := range cfgs {
			cfgs[i].Metrics = chaosCfg.Metrics
		}
		results, err := bench.RunChaosSweep(cfgs)
		if err != nil {
			return err
		}
		for _, res := range results {
			fmt.Println(res)
		}
		return nil
	})
}

func runSharded(bench.Scale) error {
	return timed("sharded", func() error {
		fmt.Println("sharded scaling: congested home shard, auto-migration policy on/off")
		fmt.Printf("%-7s %-7s %12s %10s %8s %8s %10s\n",
			"chains", "policy", "committed", "tx/s", "moves", "spread", "wall")
		base := make(map[int]float64)
		for _, chains := range []int{4, 16, 64} {
			for _, policy := range []bool{false, true} {
				res, err := workload.RunShardedScaling(workload.DefaultShardedScalingConfig(chains, policy))
				if err != nil {
					return err
				}
				line := fmt.Sprintf("%-7d %-7v %12d %10.1f %8d %8d %10s",
					chains, policy, res.Committed, res.Throughput,
					res.Moves.Completed, res.FinalSpread, res.Wall.Round(time.Millisecond))
				if policy {
					line += fmt.Sprintf("   gain %.2fx", res.Throughput/base[chains])
				} else {
					base[chains] = res.Throughput
				}
				fmt.Println(line)
			}
		}
		fmt.Println()
		return nil
	})
}

func runRebalance(bench.Scale) error {
	return timed("rebalance", func() error {
		for _, enabled := range []bool{false, true} {
			res, err := workload.RunRebalance(workload.DefaultRebalanceConfig(4, enabled))
			if err != nil {
				return err
			}
			mode := "hot shard (no balancing)"
			if enabled {
				mode = "with Move-based rebalancer"
			}
			fmt.Printf("%s: %.1f tx/s, %d moves, distribution %v\n",
				mode, res.Throughput, res.MovesIssued, res.FinalDistribution)
		}
		return nil
	})
}
