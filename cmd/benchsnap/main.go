// Command benchsnap measures the performance-critical paths of the
// simulator — trie ops, hashing, the EVM interpreter loop, the Kitties
// replay, and the parallel Fig. 6 grid — and writes the results as a JSON
// snapshot (BENCH_<n>.json by default, picking the next free index).
//
// Snapshots are the repository's performance baseline: compare two of them
// with cmd/benchdiff, which fails on regressions beyond a threshold.
//
// Usage:
//
//	benchsnap [-quick] [-repeat n] [-out file.json]
//
// -quick cuts iteration counts ~10x for smoke tests; its numbers are
// noisier and should not be committed as baselines. -repeat runs the whole
// cell list n times and keeps per-cell medians — use it for committed
// baselines on hosts whose wall-clock is noisy run to run.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"scmove/internal/bench"
	"scmove/internal/chain"
	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/mpt"
	"scmove/internal/state"
	"scmove/internal/state/backend"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/workload"
)

// Result is one measured benchmark.
type Result struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the file format consumed by cmd/benchdiff.
type Snapshot struct {
	Created    string   `json:"created"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Quick      bool     `json:"quick,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	quick := flag.Bool("quick", false, "cut iterations ~10x (smoke runs, not baselines)")
	out := flag.String("out", "", "output path (default: next free BENCH_<n>.json)")
	repeat := flag.Int("repeat", 1, "run the whole cell list N times and keep per-cell medians (tames scheduler/GC noise on small cells)")
	flag.Parse()

	snap := Snapshot{
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	div := 1
	if *quick {
		div = 10
	}
	if *repeat < 1 {
		*repeat = 1
	}
	// With -repeat, every pass runs the full list in order (not N passes of
	// one cell back to back), so slow drift in host load spreads across all
	// cells evenly instead of biasing whichever cell ran last.
	passes := make([][]Result, 0, *repeat)
	for p := 0; p < *repeat; p++ {
		var results []Result
		for _, b := range benchmarks() {
			iters := b.iters / div
			if iters < 1 {
				iters = 1
			}
			res, err := b.run(iters)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", b.name, err)
				os.Exit(1)
			}
			res.Name = b.name
			results = append(results, res)
			fmt.Printf("%-24s %10d iters  %12.0f ns/op  %10.0f B/op  %8.1f allocs/op\n",
				res.Name, res.Iters, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
		passes = append(passes, results)
	}
	snap.Results = medianResults(passes)

	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

// medianResults folds N same-order passes into one result list, taking the
// per-cell median of every scalar (and of every extra field). Medians of
// independent passes resist the one-off GC or timeslicing hiccup a single
// pass can catch on a loaded host.
func medianResults(passes [][]Result) []Result {
	if len(passes) == 1 {
		return passes[0]
	}
	med := func(vals []float64) float64 {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			return vals[n/2]
		}
		return (vals[n/2-1] + vals[n/2]) / 2
	}
	out := make([]Result, len(passes[0]))
	for i := range out {
		out[i] = passes[0][i]
		var ns, by, al []float64
		for _, pass := range passes {
			ns = append(ns, pass[i].NsPerOp)
			by = append(by, pass[i].BytesPerOp)
			al = append(al, pass[i].AllocsPerOp)
		}
		out[i].NsPerOp, out[i].BytesPerOp, out[i].AllocsPerOp = med(ns), med(by), med(al)
		if len(passes[0][i].Extra) > 0 {
			ex := make(map[string]float64, len(passes[0][i].Extra))
			for k := range passes[0][i].Extra {
				var vals []float64
				for _, pass := range passes {
					vals = append(vals, pass[i].Extra[k])
				}
				ex[k] = med(vals)
			}
			out[i].Extra = ex
		}
	}
	return out
}

// nextSnapshotPath returns BENCH_<n>.json for the first free n.
func nextSnapshotPath() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

type benchmark struct {
	name  string
	iters int
	run   func(iters int) (Result, error)
}

// measure times iters repetitions of op, collecting allocation deltas from
// the runtime. A GC fence before sampling keeps concurrent sweep noise out
// of the byte counts.
func measure(iters int, op func() error) (Result, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return Result{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return Result{
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
	}, nil
}

func benchmarks() []benchmark {
	return []benchmark{
		{name: "hashing_sum_512B", iters: 1_000_000, run: runHashingSum},
		{name: "mpt_get", iters: 1_000_000, run: runMptGet},
		{name: "mpt_set_overwrite", iters: 500_000, run: runMptSet},
		{name: "evm_tight_loop", iters: 20_000, run: runEvmLoop},
		{name: "verify_batch_64", iters: 50, run: runVerifyBatch},
		{name: "sender_cache_hit", iters: 500_000, run: runSenderCacheHit},
		{name: "kitties_replay", iters: 5, run: runKitties},
		{name: "fig6_grid_ci", iters: 2, run: runFig6Grid},
		{name: "move_stages", iters: 2, run: runMoveStages},
		{name: "apply_block_parallel_disjoint", iters: 60, run: runApplyBlockParallel(false)},
		// The optimistic cells' abort counts depend on goroutine timeslicing
		// (a single CPU interleaves the lanes differently run to run), so
		// their allocs/op carry real scheduling noise — more iterations
		// tighten the mean enough for the 5% benchdiff gate to be meaningful.
		{name: "apply_block_parallel_conflicting", iters: 60, run: runApplyBlockParallel(true)},
		{name: "apply_block_scheduled_disjoint", iters: 20, run: runApplyBlockScheduled(false)},
		{name: "apply_block_scheduled_conflicting", iters: 20, run: runApplyBlockScheduled(true)},
		{name: "apply_block_scheduled_kitties_dag", iters: 20, run: runApplyBlockKittiesDAG},
		{name: "shard_scaling_4", iters: 1, run: runShardScaling(4)},
		{name: "shard_scaling_16", iters: 1, run: runShardScaling(16)},
		{name: "shard_scaling_64", iters: 1, run: runShardScaling(64)},
		{name: "state_commit_memory", iters: 300, run: runStateCommit(backend.KindMemory)},
		{name: "state_commit_file", iters: 300, run: runStateCommit(backend.KindFile)},
		{name: "state_flat_warm_read", iters: 1_000_000, run: runStateWarmRead},
		{name: "state_cold_read_file", iters: 500, run: runStateColdRead},
	}
}

// benchProcs pins GOMAXPROCS for a parallel leg: min(4, max(2, NumCPU)).
func benchProcs() int {
	procs := runtime.NumCPU()
	if procs > 4 {
		procs = 4
	}
	if procs < 2 {
		procs = 2
	}
	return procs
}

// runApplyBlockParallel measures one 128-transaction block executed by the
// optimistic parallel scheduler (the headline ns/op) against the serial loop
// on identical traffic (extra field serial_ns_per_op, plus the speedup
// ratio). The parallel leg runs at min(4, max(2, NumCPU)) GOMAXPROCS; on a
// single-core host that still exercises the full lanes-plus-commit machinery
// and the ratio reports its overhead rather than a speedup (see DESIGN.md).
// Both legs must commit the same state root — the benchmark doubles as a
// cross-engine check on real-size blocks.
func runApplyBlockParallel(conflicting bool) func(iters int) (Result, error) {
	return func(iters int) (Result, error) {
		// One transaction per sender: same-sender nonce chains are inherently
		// serial for this engine (every later tx reads the nonce the earlier
		// one wrote), so the disjoint cell uses independent senders and the
		// conflicting cell differs only in the contract's storage pattern.
		cfg := bench.ApplyBlockConfig{Senders: 128, Txs: 128, Conflicting: conflicting, Strategy: chain.StrategyOptimistic}
		txs, err := bench.BuildApplyBlockTxs(cfg)
		if err != nil {
			return Result{}, err
		}
		var roots [2]hashing.Hash
		leg := func(iters, threshold, slot int) (Result, error) {
			cfg.ParallelThreshold = threshold
			return measure(iters, func() error {
				c, err := bench.BuildApplyBlockChain(cfg)
				if err != nil {
					return err
				}
				block, receipts := c.ApplyBlock(txs, 100, chain.ProposerAddress(1, 0))
				for _, rec := range receipts {
					if !rec.Succeeded() {
						return fmt.Errorf("apply_block: tx failed: %s", rec.Err)
					}
				}
				roots[slot], _ = c.RootAt(block.Header.Height)
				return nil
			})
		}
		serial, err := leg(iters, -1, 0)
		if err != nil {
			return Result{}, err
		}
		procs := benchProcs()
		prev := runtime.GOMAXPROCS(procs)
		res, err := leg(iters, 1, 1)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return Result{}, err
		}
		if roots[0] != roots[1] {
			return Result{}, fmt.Errorf("apply_block: parallel root %s != serial %s", roots[1], roots[0])
		}
		res.Extra = map[string]float64{
			"serial_ns_per_op": serial.NsPerOp,
			"speedup":          serial.NsPerOp / res.NsPerOp,
			"gomaxprocs":       float64(procs),
			"numcpu":           float64(runtime.NumCPU()),
		}
		return res, nil
	}
}

// runApplyBlockScheduled measures the same 128-transaction block executed by
// the conflict-aware scheduled engine against the serial loop. A one-call
// warmup block teaches the pattern cache first, so the measured block plans
// from a learned symbolic pattern: the disjoint cell levelizes into one wide
// wave, the conflicting cell degenerates (by design) into direct singleton
// waves with zero aborts. The extras carry the speedup and the observed
// mispredict rate (aborted speculations / speculations) accumulated across
// all scheduled iterations. Roots are cross-checked serial vs scheduled.
func runApplyBlockScheduled(conflicting bool) func(iters int) (Result, error) {
	return func(iters int) (Result, error) {
		cfg := bench.ApplyBlockConfig{Senders: 128, Txs: 128, Conflicting: conflicting, Strategy: chain.StrategyScheduled}
		txs, err := bench.BuildApplyBlockTxs(cfg)
		if err != nil {
			return Result{}, err
		}
		warmup, err := bench.BuildApplyBlockWarmupTx(cfg)
		if err != nil {
			return Result{}, err
		}
		reg := metrics.NewRegistry()
		var roots [2]hashing.Hash
		leg := func(iters, threshold, slot int, observe bool) (Result, error) {
			cfg.ParallelThreshold = threshold
			return measure(iters, func() error {
				c, err := bench.BuildApplyBlockChain(cfg)
				if err != nil {
					return err
				}
				if observe {
					c.SetObserver(reg, func() time.Duration { return 0 })
				}
				for blk, batch := range [][]*types.Transaction{warmup, txs} {
					block, receipts := c.ApplyBlock(batch, uint64(100+blk), chain.ProposerAddress(1, 0))
					for _, rec := range receipts {
						if !rec.Succeeded() {
							return fmt.Errorf("apply_block_scheduled: tx failed: %s", rec.Err)
						}
					}
					roots[slot], _ = c.RootAt(block.Header.Height)
				}
				return nil
			})
		}
		serial, err := leg(iters, -1, 0, false)
		if err != nil {
			return Result{}, err
		}
		procs := benchProcs()
		prev := runtime.GOMAXPROCS(procs)
		res, err := leg(iters, 1, 1, true)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return Result{}, err
		}
		if roots[0] != roots[1] {
			return Result{}, fmt.Errorf("apply_block_scheduled: scheduled root %s != serial %s", roots[1], roots[0])
		}
		res.Extra = scheduledExtras(serial, res, procs, reg)
		return res, nil
	}
}

// runApplyBlockKittiesDAG measures the 128-breed tournament DAG block — the
// tentpole acceptance workload — scheduled vs serial, with the same warmup
// block teaching the breed pattern before the measured block in both legs.
func runApplyBlockKittiesDAG(iters int) (Result, error) {
	warmup, dag, err := bench.BuildKittiesDAGTxs()
	if err != nil {
		return Result{}, err
	}
	reg := metrics.NewRegistry()
	var roots [2]hashing.Hash
	leg := func(iters, threshold, slot int, observe bool) (Result, error) {
		return measure(iters, func() error {
			c, err := bench.BuildKittiesDAGChain(threshold, chain.StrategyScheduled)
			if err != nil {
				return err
			}
			if observe {
				c.SetObserver(reg, func() time.Duration { return 0 })
			}
			for blk, batch := range [][]*types.Transaction{warmup, dag} {
				block, receipts := c.ApplyBlock(batch, uint64(100+blk), chain.ProposerAddress(1, 0))
				for _, rec := range receipts {
					if !rec.Succeeded() {
						return fmt.Errorf("kitties_dag: tx failed: %s", rec.Err)
					}
				}
				roots[slot], _ = c.RootAt(block.Header.Height)
			}
			return nil
		})
	}
	serial, err := leg(iters, -1, 0, false)
	if err != nil {
		return Result{}, err
	}
	procs := benchProcs()
	prev := runtime.GOMAXPROCS(procs)
	res, err := leg(iters, 1, 1, true)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return Result{}, err
	}
	if roots[0] != roots[1] {
		return Result{}, fmt.Errorf("kitties_dag: scheduled root %s != serial %s", roots[1], roots[0])
	}
	res.Extra = scheduledExtras(serial, res, procs, reg)
	return res, nil
}

// scheduledExtras assembles the extra fields shared by the scheduled cells:
// the serial baseline, the speedup ratio, and the scheduler's accumulated
// mispredict rate from the attached registry.
func scheduledExtras(serial, res Result, procs int, reg *metrics.Registry) map[string]float64 {
	cs := reg.Counters()
	rate := 0.0
	if spec := cs.Get("schedule.speculated"); spec > 0 {
		rate = float64(cs.Get("schedule.mispredicts")) / float64(spec)
	}
	return map[string]float64{
		"serial_ns_per_op": serial.NsPerOp,
		"speedup":          serial.NsPerOp / res.NsPerOp,
		"gomaxprocs":       float64(procs),
		"numcpu":           float64(runtime.NumCPU()),
		"mispredict_rate":  rate,
	}
}

// runMoveStages drives the chaos scenario with the observability registry on
// and records the per-stage Move latency summaries (simulated time, fully
// deterministic) as extra fields. benchdiff -stages gates on them, so a
// change that silently slows Move1 inclusion, the p-block confirmation wait,
// or Move2 commit fails the diff even when wall-clock stays flat.
func runMoveStages(iters int) (Result, error) {
	cfg := bench.DefaultChaosConfig()
	cfg.Metrics = true
	var reg *metrics.Registry
	res, err := measure(iters, func() error {
		out, err := bench.RunChaos(cfg)
		if err != nil {
			return err
		}
		reg = out.Registry
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Extra = make(map[string]float64)
	for name, key := range map[string]string{
		"move1.commit": "move1",
		"p.wait":       "p_wait",
		"move2.commit": "move2",
		"move.total":   "total",
	} {
		h := reg.Histogram(name)
		if h == nil {
			continue
		}
		s := h.Summarize()
		res.Extra[key+"_count"] = float64(s.Count)
		res.Extra[key+"_p50_s"] = s.P50.Seconds()
		res.Extra[key+"_p95_s"] = s.P95.Seconds()
		res.Extra[key+"_max_s"] = s.Max.Seconds()
	}
	return res, nil
}

// runVerifyBatch measures batch ECDSA recovery of 64 signatures through the
// worker pool — the unit of work ApplyBlock fans out per block. On a
// multi-core host ns/op shrinks with GOMAXPROCS; the snapshot records the
// host's parallel verification throughput.
func runVerifyBatch(iters int) (Result, error) {
	const n = 64
	digests := make([]hashing.Hash, n)
	sigs := make([]keys.Signature, n)
	for i := range sigs {
		kp := keys.Deterministic(uint64(i + 1))
		digests[i] = hashing.Sum([]byte{byte(i), byte(i >> 8)})
		sig, err := kp.Sign(digests[i])
		if err != nil {
			return Result{}, err
		}
		sigs[i] = sig
	}
	return measure(iters, func() error {
		_, errs := keys.VerifyBatch(digests, sigs)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// runSenderCacheHit measures Sender on a transaction whose (id, signature)
// is already cached but whose per-object memo is stripped every round — the
// exact path consensus-decoded copies take at apply time.
func runSenderCacheHit(iters int) (Result, error) {
	kp := keys.Deterministic(1)
	tx := &types.Transaction{
		ChainID:  1,
		Kind:     types.TxCall,
		To:       hashing.AddressFromBytes([]byte{0x07}),
		Value:    u256.FromUint64(1),
		GasLimit: 21_000,
		GasPrice: u256.FromUint64(2),
	}
	if err := tx.Sign(kp); err != nil {
		return Result{}, err
	}
	enc := tx.Encode()
	return measure(iters, func() error {
		c, err := types.DecodeTransaction(enc)
		if err != nil {
			return err
		}
		if _, err := c.Sender(); err != nil {
			return err
		}
		return nil
	})
}

func runHashingSum(iters int) (Result, error) {
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = byte(i)
	}
	return measure(iters, func() error {
		hashing.Sum(buf)
		return nil
	})
}

func mptTree(entries int) *mpt.Tree {
	tr := mpt.New(32)
	var key [32]byte
	for i := uint64(0); i < uint64(entries); i++ {
		binary.BigEndian.PutUint64(key[:8], i*0x9e3779b97f4a7c15)
		if err := tr.Set(key[:], key[:8]); err != nil {
			panic(err)
		}
	}
	tr.RootHash()
	return tr
}

func runMptGet(iters int) (Result, error) {
	tr := mptTree(4096)
	var key [32]byte
	i := uint64(123)
	binary.BigEndian.PutUint64(key[:8], i*0x9e3779b97f4a7c15)
	return measure(iters, func() error {
		if _, ok := tr.Get(key[:]); !ok {
			return fmt.Errorf("mpt_get: key missing")
		}
		return nil
	})
}

func runMptSet(iters int) (Result, error) {
	tr := mptTree(4096)
	var key [32]byte
	i := uint64(123)
	binary.BigEndian.PutUint64(key[:8], i*0x9e3779b97f4a7c15)
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	return measure(iters, func() error {
		return tr.Set(key[:], val)
	})
}

func runEvmLoop(iters int) (Result, error) {
	code := asm.MustAssemble(`
		PUSH1 0
		PUSH1 100
	@loop:
		JUMPDEST
		DUP1
		ISZERO
		PUSH @done
		JUMPI
		DUP1
		SWAP2
		ADD
		SWAP1
		PUSH1 1
		SWAP1
		SUB
		PUSH @loop
		JUMP
	@done:
		JUMPDEST
		POP
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)
	const chainID = hashing.ChainID(1)
	db, err := state.NewDB(chainID, trie.KindMPT)
	if err != nil {
		return Result{}, err
	}
	var origin, contract hashing.Address
	origin[0], contract[0] = 0xee, 0xcc
	db.AddBalance(origin, u256.FromUint64(1_000_000))
	db.CreateContract(contract, code)
	block := evm.BlockContext{ChainID: chainID, Number: 10, Time: 1_000_000, GasLimit: 30_000_000}
	e := evm.New(evm.EthereumSchedule(), db, block, evm.TxContext{Origin: origin}, nil)
	return measure(iters, func() error {
		_, _, err := e.Call(origin, contract, nil, u256.Zero(), 10_000_000)
		return err
	})
}

func runKitties(iters int) (Result, error) {
	cfg := workload.KittiesConfig{
		Shards:           2,
		Users:            32,
		PromoCats:        200,
		Breeds:           400,
		LocalityBias:     0.93,
		OutstandingLimit: 250,
		Seed:             5,
		MaxDuration:      4 * time.Hour,
	}
	var simTPS float64
	res, err := measure(iters, func() error {
		out, err := workload.RunKitties(cfg)
		if err != nil {
			return err
		}
		simTPS = out.Throughput
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Extra = map[string]float64{"sim_tx_s": simTPS}
	return res, nil
}

func runFig6Grid(iters int) (Result, error) {
	return measure(iters, func() error {
		_, err := bench.RunFig6Grid(bench.ScaleCI, []int{1, 2, 4}, []float64{0, 0.10})
		return err
	})
}

// runShardScaling measures one cell of the sharded-universe scaling grid:
// an S-chain laned universe, every contract deployed on one congested
// shard, and the auto-migration policy engine spreading them to their
// callers' chains. The headline ns/op is the wall cost of the policy-on
// run under the parallel-tick driver; the extras carry the simulated
// steady-state throughput, the policy's throughput gain over the
// frozen-contracts baseline, the driver speedup over the serial
// discrete-event loop (on a single-core host this reports overhead, like
// the apply_block cells), and the migration count/spread. The serial and
// parallel driver legs must produce bit-identical fingerprints — the cell
// doubles as a determinism check at benchmark scale.
func runShardScaling(chains int) func(iters int) (Result, error) {
	return func(iters int) (Result, error) {
		var on *workload.ShardedScalingResult
		procs := benchProcs()
		prev := runtime.GOMAXPROCS(procs)
		res, err := measure(iters, func() error {
			r, err := workload.RunShardedScaling(workload.DefaultShardedScalingConfig(chains, true))
			if err != nil {
				return err
			}
			on = r
			return nil
		})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return Result{}, err
		}
		scfg := workload.DefaultShardedScalingConfig(chains, true)
		scfg.ParallelTick = false
		serial, err := workload.RunShardedScaling(scfg)
		if err != nil {
			return Result{}, err
		}
		if serial.Fingerprint != on.Fingerprint {
			return Result{}, fmt.Errorf("shard_scaling_%d: parallel-tick fingerprint diverged from serial", chains)
		}
		off, err := workload.RunShardedScaling(workload.DefaultShardedScalingConfig(chains, false))
		if err != nil {
			return Result{}, err
		}
		res.Extra = map[string]float64{
			"sim_tx_s":    on.Throughput,
			"policy_gain": on.Throughput / off.Throughput,
			"moves":       float64(on.Moves.Completed),
			"spread":      float64(on.FinalSpread),
			"speedup":     float64(serial.Wall) / float64(on.Wall),
			"gomaxprocs":  float64(procs),
			"numcpu":      float64(runtime.NumCPU()),
		}
		return res, nil
	}
}

// stateBenchCfg is the shared shape of the state-backend cells: a mid-size
// populated database where an eighth of the accounts are contracts with a
// few storage slots each.
func stateBenchCfg(kind backend.Kind, dir string) bench.StateDBConfig {
	return bench.StateDBConfig{
		Accounts:        4096,
		Contracts:       512,
		SlotsPerAccount: 4,
		BlockAccounts:   1024,
		Options:         state.Options{Backend: kind, Dir: dir},
	}
}

func stateSlotKey(s int) [32]byte {
	var key [32]byte
	binary.BigEndian.PutUint64(key[24:], uint64(s))
	return key
}

// runStateCommit measures one update block — 256 balance touches plus
// storage overwrites — flushed through Commit, per backend. The file leg
// includes the segment append (and any compaction it earns).
func runStateCommit(kind backend.Kind) func(iters int) (Result, error) {
	return func(iters int) (Result, error) {
		var dir string
		if kind == backend.KindFile {
			d, err := os.MkdirTemp("", "benchsnap-state-*")
			if err != nil {
				return Result{}, err
			}
			defer os.RemoveAll(d)
			dir = d
		}
		cfg := stateBenchCfg(kind, dir)
		db, err := bench.BuildStateDB(cfg)
		if err != nil {
			return Result{}, err
		}
		defer db.Close()
		round := 0
		return measure(iters, func() error {
			round++
			if root := bench.MutateStateBlock(db, cfg, round, 256); root == (hashing.Hash{}) {
				return fmt.Errorf("state_commit: zero root")
			}
			return nil
		})
	}
}

// runStateWarmRead measures the deployed warm-read stack: storage reads
// served by the flat cache, balance reads by the decoded working set. The
// extra field reports the flat cache's hit rate over the run.
func runStateWarmRead(iters int) (Result, error) {
	cfg := stateBenchCfg(backend.KindMemory, "")
	db, err := bench.BuildStateDB(cfg)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()
	const hot = 256
	addrs := make([]hashing.Address, hot)
	key := stateSlotKey(1)
	for i := range addrs {
		addrs[i] = bench.StateBenchAddr(i)
		db.GetBalance(addrs[i])
		db.GetStorage(addrs[i], key)
	}
	h0, m0 := db.FlatCacheStats()
	i := 0
	res, err := measure(iters, func() error {
		a := addrs[i%hot]
		i++
		if db.GetStorage(a, key) == ([32]byte{}) {
			return fmt.Errorf("state_warm_read: empty slot")
		}
		if db.GetBalance(a).IsZero() {
			return fmt.Errorf("state_warm_read: empty balance")
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	h1, m1 := db.FlatCacheStats()
	total := float64(h1 - h0 + m1 - m0)
	if total > 0 {
		res.Extra = map[string]float64{"flat_hit_rate": float64(h1-h0) / total}
	}
	return res, nil
}

// runStateColdRead measures reads with every cache dropped on the file
// backend with a minimal resident-tree budget: account records come off the
// in-memory tree, storage slots off the segment files via one ReadAt each.
func runStateColdRead(iters int) (Result, error) {
	dir, err := os.MkdirTemp("", "benchsnap-state-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	cfg := stateBenchCfg(backend.KindFile, dir)
	cfg.Options.StorageTreeLimit = 1
	db, err := bench.BuildStateDB(cfg)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()
	key := stateSlotKey(1)
	i := 0
	return measure(iters, func() error {
		db.DropCaches()
		for j := 0; j < 64; j++ {
			a := bench.StateBenchAddr((i + j) % cfg.Contracts)
			if _, ok := db.GetAccount(a); !ok {
				return fmt.Errorf("state_cold_read: missing account")
			}
			if db.GetStorage(a, key) == ([32]byte{}) {
				return fmt.Errorf("state_cold_read: empty slot")
			}
		}
		i += 64
		return nil
	})
}
