// Command scoinbench runs the SCoin closed-loop token benchmark of §VII-B
// (Figs. 6 and 7): configurable shard count and cross-shard rate, with an
// optional conflict/retry mode, printing throughput, latency statistics,
// the CDF, and the retry histogram.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/workload"
)

func main() {
	shards := flag.Int("shards", 4, "number of Burrow-like shards")
	clients := flag.Int("clients", 250, "closed-loop clients per shard")
	cross := flag.Float64("cross", 0.10, "cross-shard operation fraction (0..1)")
	duration := flag.Duration("duration", 5*time.Minute, "measured (simulated) window")
	retries := flag.Bool("retries", false, "conflict mode: clients race moving targets and retry")
	seed := flag.Int64("seed", 11, "simulation seed")
	flag.Parse()

	res, err := workload.RunSCoin(workload.SCoinConfig{
		Shards:          *shards,
		ClientsPerShard: *clients,
		CrossFraction:   *cross,
		Duration:        *duration,
		Retries:         *retries,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoinbench:", err)
		os.Exit(1)
	}

	fmt.Printf("SCoin: %d shards, %.0f%% cross-shard, retries=%v\n",
		*shards, *cross*100, *retries)
	fmt.Printf("throughput: %.1f tx/s   ops: %.1f/s   realized cross rate: %.2f%%   failed ops: %d\n",
		res.Throughput, res.OpsPerSec, res.MeasuredCrossFraction*100, res.FailedOps)
	fmt.Printf("latency: single-shard mean %v, cross-shard mean %v, >30s fraction %.2f\n\n",
		res.Single.Mean().Round(100*time.Millisecond),
		res.Cross.Mean().Round(100*time.Millisecond),
		res.All.FractionAbove(30*time.Second))

	tbl := metrics.NewTable("latency", "CDF")
	for _, p := range res.All.CDF(20) {
		tbl.AddRow(p.Latency.Round(100*time.Millisecond), fmt.Sprintf("%.2f", p.Fraction))
	}
	fmt.Println(tbl)

	if *retries {
		total := 0
		for _, n := range res.RetryCounts {
			total += n
		}
		if total > 0 {
			fmt.Println("retry histogram:")
			for k := 1; k <= 12; k++ {
				if n := res.RetryCounts[k]; n > 0 {
					fmt.Printf("  retried %dx: %d (%.0f%%)\n", k, n, 100*float64(n)/float64(total))
				}
			}
		}
	}
}
