// Command minisol compiles MiniSol contracts (the repository's Solidity-
// extension stand-in, §III-D) to EVM bytecode.
//
// Usage:
//
//	minisol [-asm] [-dis] file.msol
//
// Prints the bytecode as hex; -asm also prints the generated assembly and
// -dis the disassembly of the final bytecode.
package main

import (
	"flag"
	"fmt"
	"os"

	"scmove/internal/evm/asm"
	"scmove/internal/lang"
)

func main() {
	showAsm := flag.Bool("asm", false, "print the generated assembly")
	showDis := flag.Bool("dis", false, "print the bytecode disassembly")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minisol [-asm] [-dis] file.msol")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *showAsm, *showDis); err != nil {
		fmt.Fprintln(os.Stderr, "minisol:", err)
		os.Exit(1)
	}
}

func run(path string, showAsm, showDis bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if showAsm {
		text, err := lang.CompileToAssembly(string(src))
		if err != nil {
			return err
		}
		fmt.Println("; generated assembly")
		fmt.Print(text)
		fmt.Println()
	}
	code, err := lang.Compile(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("bytecode (%d bytes):\n%x\n", len(code), code)
	if showDis {
		fmt.Println("\ndisassembly:")
		for _, line := range asm.Disassemble(code) {
			fmt.Println(line)
		}
	}
	return nil
}
