// Command kittiesreplay replays a synthetic CryptoKitties trace on a
// sharded Burrow-like deployment (the §VII-A experiment behind Fig. 5) and
// prints throughput, the realized cross-shard rate, the throughput
// timeline, and the per-shard starvation markers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/workload"
)

func main() {
	shards := flag.Int("shards", 2, "number of Burrow-like shards (10 validators each)")
	users := flag.Int("users", 128, "number of cat owners")
	promos := flag.Int("promos", 2000, "promotional cats created by the game owner")
	breeds := flag.Int("breeds", 3000, "breeding operations")
	locality := flag.Float64("locality", 0.93, "probability a breeding partner is one's own cat")
	outstanding := flag.Int("outstanding", 250, "outstanding-transaction window per shard")
	seed := flag.Int64("seed", 5, "trace and simulation seed")
	flag.Parse()

	res, err := workload.RunKitties(workload.KittiesConfig{
		Shards:           *shards,
		Users:            *users,
		PromoCats:        *promos,
		Breeds:           *breeds,
		LocalityBias:     *locality,
		OutstandingLimit: *outstanding,
		Seed:             *seed,
		MaxDuration:      12 * time.Hour,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kittiesreplay:", err)
		os.Exit(1)
	}

	fmt.Printf("ScalableKitties replay: %d shards, %d ops (%d failed), simulated %v\n",
		*shards, res.OpsCompleted, res.FailedOps, res.SimDuration.Round(time.Second))
	fmt.Printf("throughput: %.1f tx/s   cross-blockchain rate: %.2f%%\n\n",
		res.Throughput, res.CrossRate*100)

	tbl := metrics.NewTable("t", "tx/s")
	for _, p := range res.Timeline.Series() {
		tbl.AddRow(p.At.Round(time.Second), fmt.Sprintf("%.1f", p.TPS))
	}
	fmt.Println(tbl)
	if len(res.StarvedAt) > 0 {
		fmt.Println("limit-reached markers (shard ran below its outstanding window):")
		for id, at := range res.StarvedAt {
			fmt.Printf("  %s at %v\n", id, at.Round(time.Second))
		}
	}
}
