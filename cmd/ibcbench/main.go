// Command ibcbench runs the inter-blockchain-communication experiments of
// §VIII: it moves the five benchmark applications (SCoin, ScalableKitties,
// Store 1/10/100) between the Ethereum-like and Burrow-like chains in both
// directions and prints the per-phase latency (Fig. 8) and gas/monetary
// cost (Fig. 9) tables.
package main

import (
	"fmt"
	"os"

	"scmove/internal/bench"
)

func main() {
	res, err := bench.RunFig8And9()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibcbench:", err)
		os.Exit(1)
	}
	fmt.Println(res)
}
