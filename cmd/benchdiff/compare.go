package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// result and snapshot mirror the cmd/benchsnap JSON schema. The types are
// duplicated rather than imported to keep this command stdlib-only; the
// JSON field names are the contract between the two commands.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra carries benchmark-specific scalars — simulated throughput,
	// stage-latency histogram summaries (move1_p50_s, p_wait_p95_s, …).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type snapshot struct {
	Created    string   `json:"created"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Quick      bool     `json:"quick"`
	Results    []result `json:"results"`
}

func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// diff is the outcome of comparing two snapshots: one row per benchmark
// present in both, plus the names only one side has. Only shared benchmarks
// can regress; Added and Removed are reported so a snapshot that grew or
// retired benchmarks still diffs cleanly — silently skipping them would
// read as "covered", and failing on them would make adding a benchmark a
// breaking change.
type diff struct {
	rows      []string
	added     []string // in new only
	removed   []string // in old only
	regressed bool
}

// compare matches benchmarks by name and flags regressions on the shared
// set. A zero old value (e.g. allocs/op on an already zero-alloc path)
// regresses if the new value is anything above zero plus threshold-free
// slack of one object, since a ratio against zero is meaningless.
//
// stageThresh gates the Extra fields (stage-latency summaries and other
// benchmark-specific scalars): a negative value ignores them entirely — the
// default, since older baselines don't carry them — and a non-negative one
// fails any shared Extra key that grew beyond that fraction.
func compare(oldSnap, newSnap *snapshot, timeThresh, allocThresh, stageThresh float64) diff {
	var d diff
	oldByName := make(map[string]result, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		oldByName[r.Name] = r
	}
	seen := make(map[string]bool, len(newSnap.Results))
	for _, n := range newSnap.Results {
		seen[n.Name] = true
		o, ok := oldByName[n.Name]
		if !ok {
			d.added = append(d.added, n.Name)
			continue
		}
		timeDelta := ratio(o.NsPerOp, n.NsPerOp)
		allocDelta := ratio(o.AllocsPerOp, n.AllocsPerOp)
		mark := ""
		if timeBad := timeDelta > timeThresh; timeBad {
			mark = "  REGRESSION(time)"
			d.regressed = true
		}
		if allocBad(o.AllocsPerOp, n.AllocsPerOp, allocThresh) {
			mark += "  REGRESSION(allocs)"
			d.regressed = true
		}
		for _, key := range sharedExtras(o.Extra, n.Extra) {
			if stageThresh >= 0 && ratio(o.Extra[key], n.Extra[key]) > stageThresh {
				mark += fmt.Sprintf("  REGRESSION(%s)", key)
				d.regressed = true
			}
		}
		d.rows = append(d.rows, fmt.Sprintf("%-24s %12.0f -> %12.0f ns/op (%+6.1f%%)  %10.1f -> %10.1f allocs/op (%+6.1f%%)%s",
			n.Name, o.NsPerOp, n.NsPerOp, timeDelta*100, o.AllocsPerOp, n.AllocsPerOp, allocDelta*100, mark))
	}
	for _, o := range oldSnap.Results {
		if !seen[o.Name] {
			d.removed = append(d.removed, o.Name)
		}
	}
	return d
}

// sharedExtras returns the Extra keys present in both results, sorted so
// regression marks render deterministically.
func sharedExtras(old, new map[string]float64) []string {
	var keys []string
	for k := range old {
		if _, ok := new[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ratio returns (new-old)/old, or 0 when old is zero (delta undefined).
func ratio(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// allocBad applies the alloc threshold, special-casing a zero baseline:
// a path that was zero-alloc must stay within one object per op.
func allocBad(old, new, thresh float64) bool {
	if old == 0 {
		return new > 1
	}
	return (new-old)/old > thresh
}
