// Command benchdiff compares two benchsnap snapshots and exits non-zero if
// any benchmark regressed beyond a threshold. It is the gate that keeps the
// hot-path optimizations from silently rotting: CI (or a reviewer) runs
//
//	benchdiff BENCH_0.json BENCH_1.json
//
// and a >15% ns/op regression on any shared benchmark fails the build.
// Allocation counts are compared with a tight default threshold (5%)
// because they are deterministic, unlike wall-clock time.
//
// Snapshots may also carry per-benchmark extra scalars (the move_stages
// stage-latency summaries above all). They are ignored by default — older
// baselines don't have them — and compared with -stages, which fails any
// shared extra that grew beyond -stage-threshold (10% default; the values
// are simulated-time and deterministic, so the slack only absorbs intended
// tuning changes, not noise).
//
// The command deliberately imports nothing outside the standard library so
// it can be vendored into CI images or run against snapshots from other
// checkouts without dragging in the simulator.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	timeThresh := flag.Float64("threshold", 0.15, "max allowed ns/op regression (fraction, e.g. 0.15 = 15%)")
	allocThresh := flag.Float64("alloc-threshold", 0.05, "max allowed allocs/op regression (fraction)")
	stages := flag.Bool("stages", false, "also gate the extra fields (stage-latency summaries)")
	stageThresh := flag.Float64("stage-threshold", 0.10, "max allowed extra-field regression with -stages (fraction)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold frac] [-alloc-threshold frac] [-stages] old.json new.json")
		os.Exit(2)
	}
	oldSnap, err := readSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSnap, err := readSnapshot(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	extraThresh := -1.0 // ignore extras unless -stages
	if *stages {
		extraThresh = *stageThresh
	}
	d := compare(oldSnap, newSnap, *timeThresh, *allocThresh, extraThresh)
	for _, r := range d.rows {
		fmt.Println(r)
	}
	if len(d.added) > 0 {
		fmt.Printf("added (no baseline, not compared):   %s\n", strings.Join(d.added, ", "))
	}
	if len(d.removed) > 0 {
		fmt.Printf("removed (no new value, not compared): %s\n", strings.Join(d.removed, ", "))
	}
	if d.regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond threshold (time %.0f%%, allocs %.0f%%)\n",
			*timeThresh*100, *allocThresh*100)
		os.Exit(1)
	}
}
