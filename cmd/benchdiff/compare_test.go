package main

import (
	"strings"
	"testing"
)

func snap(results ...result) *snapshot {
	return &snapshot{Created: "2026-01-01T00:00:00Z", Results: results}
}

// TestInjectedTimeRegressionFails is the acceptance check for the diff
// gate: a 20% ns/op slowdown against a 15% threshold must fail.
func TestInjectedTimeRegressionFails(t *testing.T) {
	oldSnap := snap(result{Name: "kitties_replay", NsPerOp: 100_000_000, AllocsPerOp: 235_000})
	newSnap := snap(result{Name: "kitties_replay", NsPerOp: 120_000_000, AllocsPerOp: 235_000})
	rows, regressed := compare(oldSnap, newSnap, 0.15, 0.05)
	if !regressed {
		t.Fatal("20% time regression not flagged at 15% threshold")
	}
	if len(rows) != 1 || !strings.Contains(rows[0], "REGRESSION(time)") {
		t.Fatalf("rows = %q, want one row marked REGRESSION(time)", rows)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	oldSnap := snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0})
	newSnap := snap(result{Name: "mpt_get", NsPerOp: 220, AllocsPerOp: 0})
	if _, regressed := compare(oldSnap, newSnap, 0.15, 0.05); regressed {
		t.Fatal("10% time delta flagged at 15% threshold")
	}
}

func TestImprovementPasses(t *testing.T) {
	oldSnap := snap(result{Name: "evm_tight_loop", NsPerOp: 50_000, AllocsPerOp: 10})
	newSnap := snap(result{Name: "evm_tight_loop", NsPerOp: 30_000, AllocsPerOp: 3})
	if _, regressed := compare(oldSnap, newSnap, 0.15, 0.05); regressed {
		t.Fatal("improvement flagged as regression")
	}
}

func TestAllocRegressionFails(t *testing.T) {
	oldSnap := snap(result{Name: "kitties_replay", NsPerOp: 100, AllocsPerOp: 100})
	newSnap := snap(result{Name: "kitties_replay", NsPerOp: 100, AllocsPerOp: 110})
	rows, regressed := compare(oldSnap, newSnap, 0.15, 0.05)
	if !regressed {
		t.Fatal("10% alloc regression not flagged at 5% threshold")
	}
	if !strings.Contains(rows[0], "REGRESSION(allocs)") {
		t.Fatalf("row = %q, want REGRESSION(allocs)", rows[0])
	}
}

// TestZeroAllocBaselineGuard pins the special case: a path that was
// zero-alloc may not start allocating (beyond one object of pool jitter),
// even though a ratio against zero is undefined.
func TestZeroAllocBaselineGuard(t *testing.T) {
	oldSnap := snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0})
	if _, regressed := compare(oldSnap,
		snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0.5}), 0.15, 0.05); regressed {
		t.Fatal("half an object of jitter on a zero baseline flagged")
	}
	if _, regressed := compare(oldSnap,
		snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 2}), 0.15, 0.05); !regressed {
		t.Fatal("2 allocs/op on a zero-alloc baseline not flagged")
	}
}

func TestAddedAndRemovedBenchmarksNeverFail(t *testing.T) {
	oldSnap := snap(result{Name: "retired", NsPerOp: 100})
	newSnap := snap(result{Name: "brand_new", NsPerOp: 1_000_000, AllocsPerOp: 1e9})
	rows, regressed := compare(oldSnap, newSnap, 0.15, 0.05)
	if regressed {
		t.Fatal("unmatched benchmarks must not fail the diff")
	}
	if len(rows) != 2 {
		t.Fatalf("want a row for the new and the removed benchmark, got %q", rows)
	}
}
