package main

import (
	"reflect"
	"strings"
	"testing"
)

func snap(results ...result) *snapshot {
	return &snapshot{Created: "2026-01-01T00:00:00Z", Results: results}
}

// TestInjectedTimeRegressionFails is the acceptance check for the diff
// gate: a 20% ns/op slowdown against a 15% threshold must fail.
func TestInjectedTimeRegressionFails(t *testing.T) {
	oldSnap := snap(result{Name: "kitties_replay", NsPerOp: 100_000_000, AllocsPerOp: 235_000})
	newSnap := snap(result{Name: "kitties_replay", NsPerOp: 120_000_000, AllocsPerOp: 235_000})
	d := compare(oldSnap, newSnap, 0.15, 0.05, -1)
	if !d.regressed {
		t.Fatal("20% time regression not flagged at 15% threshold")
	}
	if len(d.rows) != 1 || !strings.Contains(d.rows[0], "REGRESSION(time)") {
		t.Fatalf("rows = %q, want one row marked REGRESSION(time)", d.rows)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	oldSnap := snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0})
	newSnap := snap(result{Name: "mpt_get", NsPerOp: 220, AllocsPerOp: 0})
	if d := compare(oldSnap, newSnap, 0.15, 0.05, -1); d.regressed {
		t.Fatal("10% time delta flagged at 15% threshold")
	}
}

func TestImprovementPasses(t *testing.T) {
	oldSnap := snap(result{Name: "evm_tight_loop", NsPerOp: 50_000, AllocsPerOp: 10})
	newSnap := snap(result{Name: "evm_tight_loop", NsPerOp: 30_000, AllocsPerOp: 3})
	if d := compare(oldSnap, newSnap, 0.15, 0.05, -1); d.regressed {
		t.Fatal("improvement flagged as regression")
	}
}

func TestAllocRegressionFails(t *testing.T) {
	oldSnap := snap(result{Name: "kitties_replay", NsPerOp: 100, AllocsPerOp: 100})
	newSnap := snap(result{Name: "kitties_replay", NsPerOp: 100, AllocsPerOp: 110})
	d := compare(oldSnap, newSnap, 0.15, 0.05, -1)
	if !d.regressed {
		t.Fatal("10% alloc regression not flagged at 5% threshold")
	}
	if !strings.Contains(d.rows[0], "REGRESSION(allocs)") {
		t.Fatalf("row = %q, want REGRESSION(allocs)", d.rows[0])
	}
}

// TestZeroAllocBaselineGuard pins the special case: a path that was
// zero-alloc may not start allocating (beyond one object of pool jitter),
// even though a ratio against zero is undefined.
func TestZeroAllocBaselineGuard(t *testing.T) {
	oldSnap := snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0})
	if d := compare(oldSnap,
		snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 0.5}), 0.15, 0.05, -1); d.regressed {
		t.Fatal("half an object of jitter on a zero baseline flagged")
	}
	if d := compare(oldSnap,
		snap(result{Name: "mpt_get", NsPerOp: 200, AllocsPerOp: 2}), 0.15, 0.05, -1); !d.regressed {
		t.Fatal("2 allocs/op on a zero-alloc baseline not flagged")
	}
}

// TestStageRegressionGate pins the -stages contract: extra fields (the
// stage-latency histogram summaries) are ignored at the default negative
// threshold, and an injected p-wait regression fails once the gate is on.
func TestStageRegressionGate(t *testing.T) {
	oldSnap := snap(result{Name: "move_stages", NsPerOp: 1000,
		Extra: map[string]float64{"p_wait_p95_s": 100, "move1_p50_s": 20}})
	newSnap := snap(result{Name: "move_stages", NsPerOp: 1000,
		Extra: map[string]float64{"p_wait_p95_s": 130, "move1_p50_s": 20}})
	if d := compare(oldSnap, newSnap, 0.15, 0.05, -1); d.regressed {
		t.Fatal("extras must be ignored without -stages")
	}
	d := compare(oldSnap, newSnap, 0.15, 0.05, 0.10)
	if !d.regressed {
		t.Fatal("30% p_wait_p95_s regression not flagged at 10% stage threshold")
	}
	if !strings.Contains(d.rows[0], "REGRESSION(p_wait_p95_s)") {
		t.Fatalf("row = %q, want REGRESSION(p_wait_p95_s)", d.rows[0])
	}
	if strings.Contains(d.rows[0], "move1_p50_s") {
		t.Fatalf("row = %q: unchanged stage must not be marked", d.rows[0])
	}
	// A baseline without extras never trips the gate (keys must be shared).
	bare := snap(result{Name: "move_stages", NsPerOp: 1000})
	if d := compare(bare, newSnap, 0.15, 0.05, 0.10); d.regressed {
		t.Fatal("extras unique to the new snapshot must not fail the diff")
	}
}

// TestAsymmetricSnapshotsCompareSharedOnly pins the contract the BENCH_0 →
// BENCH_1 diff relies on: only benchmarks present in both snapshots are
// compared (and can regress), while names unique to one side are listed —
// not skipped, not failed — as added/removed.
func TestAsymmetricSnapshotsCompareSharedOnly(t *testing.T) {
	oldSnap := snap(
		result{Name: "kitties_replay", NsPerOp: 100, AllocsPerOp: 10},
		result{Name: "retired", NsPerOp: 100},
		result{Name: "also_retired", NsPerOp: 50},
	)
	newSnap := snap(
		result{Name: "kitties_replay", NsPerOp: 90, AllocsPerOp: 10},
		result{Name: "verify_batch", NsPerOp: 1_000_000, AllocsPerOp: 1e9},
	)
	d := compare(oldSnap, newSnap, 0.15, 0.05, -1)
	if d.regressed {
		t.Fatal("unmatched benchmarks must not fail the diff")
	}
	if len(d.rows) != 1 || !strings.Contains(d.rows[0], "kitties_replay") {
		t.Fatalf("only the shared benchmark gets a comparison row, got %q", d.rows)
	}
	if !reflect.DeepEqual(d.added, []string{"verify_batch"}) {
		t.Fatalf("added = %q", d.added)
	}
	if !reflect.DeepEqual(d.removed, []string{"retired", "also_retired"}) {
		t.Fatalf("removed = %q", d.removed)
	}
}
