// Minisol compiles a movable contract written in MiniSol (the paper's
// Solidity extension, §III-D, reimagined as a small language targeting this
// repository's EVM) and moves it between the two chains.
package main

import (
	"fmt"
	"os"
	"time"

	"scmove"
	"scmove/internal/lang"
	"scmove/internal/u256"
)

// source is Listing 1 of the paper plus a tiny guestbook payload.
const source = `
contract Guestbook {
    storage owner: address
    storage movedAt: uint
    storage signatures: map
    storage count: uint

    func init() {
        require(owner == 0)
        owner = sender
    }
    func sign(name: uint) {
        count = count + 1
        signatures[count] = name
        emit Signed(count)
    }
    func entry(i: uint) returns uint {
        return signatures[i]
    }
    func entries() returns uint {
        return count
    }
    func moveTo(target: uint) {
        require(owner == sender)     // Listing 1's owner guard
        require(now - movedAt >= 60) // one simulated minute of residency
        move(target)
    }
    func moveFinish() {
        movedAt = now
    }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minisol:", err)
		os.Exit(1)
	}
}

func run() error {
	code, err := lang.Compile(source)
	if err != nil {
		return err
	}
	fmt.Printf("compiled Guestbook to %d bytes of EVM bytecode\n", len(code))

	u, err := scmove.NewUniverse(scmove.TwoChainConfig(1))
	if err != nil {
		return err
	}
	client := u.Client(0)
	burrow, ethereum := u.Chain(2), u.Chain(1)

	// Deploy the bytecode on the Burrow-like chain.
	txid, err := client.Create(burrow, code, u256.Zero())
	if err != nil {
		return err
	}
	rec, err := u.WaitTx(burrow, txid, time.Minute)
	if err != nil {
		return err
	}
	book := rec.Created
	fmt.Printf("deployed at %s on %s\n", book, burrow.ChainID())

	// Sign it twice.
	if _, err := u.MustCall(client, burrow, book, lang.EncodeCall("init"), u256.Zero(), time.Minute); err != nil {
		return err
	}
	for i, name := range []uint64{0xA11CE, 0xB0B} {
		if _, err := u.MustCall(client, burrow, book,
			lang.EncodeCall("sign", u256.FromUint64(name)), u256.Zero(), time.Minute); err != nil {
			return err
		}
		fmt.Printf("signature %d recorded\n", i+1)
	}

	// Wait out the Listing-1 residency guard (one simulated minute since
	// movedAt), then move the guestbook to the Ethereum-like chain.
	u.Run(time.Minute)
	res, err := u.MoveAndWait(client, 2, 1, book, 10*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("moved to %s in %.0fs (simulated); move2 recreated %d storage entries for %d gas\n",
		ethereum.ChainID(), res.Total().Seconds(), 4, res.Move2Gas)

	// The signatures survived the move.
	n, err := ethereum.StaticCall(client.Address(), book, lang.EncodeCall("entries"))
	if err != nil {
		return err
	}
	fmt.Printf("guestbook on %s has %s entries:\n", ethereum.ChainID(), u256.FromBytes(n))
	for i := uint64(1); i <= u256.FromBytes(n).Uint64(); i++ {
		e, err := ethereum.StaticCall(client.Address(), book, lang.EncodeCall("entry", u256.FromUint64(i)))
		if err != nil {
			return err
		}
		fmt.Printf("  #%d: %s\n", i, u256.FromBytes(e))
	}
	return nil
}
