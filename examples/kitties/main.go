// Kitties demonstrates cross-chain breeding (§V-B): every cat is its own
// movable contract, so when two cats live on different chains, one of them
// migrates — not the whole game — and the pair breeds where they meet.
package main

import (
	"fmt"
	"os"
	"time"

	"scmove"
	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kitties:", err)
		os.Exit(1)
	}
}

func run() error {
	// The game registry is pre-deployed at the same address on both chains
	// (genesis), so cat identifiers stay attestable wherever they migrate.
	registry := contracts.WellKnown("kitties-registry")
	owner := universe.ClientKey(0).Address()
	cfg := scmove.TwoChainConfig(2)
	cfg.ExtraGenesis = func(_ hashing.ChainID, db *state.DB) {
		contracts.GenesisKittyRegistry(db, registry, owner)
	}
	u, err := scmove.NewUniverse(cfg)
	if err != nil {
		return err
	}
	gameOwner, breeder := u.Client(0), u.Client(1)
	ethereum, burrow := u.Chain(1), u.Chain(2)

	// Two promotional cats, one per chain, both owned by the breeder.
	luna, err := promo(u, gameOwner, ethereum, registry, 0x11, breeder.Address())
	if err != nil {
		return err
	}
	max, err := promo(u, gameOwner, burrow, registry, 0x22, breeder.Address())
	if err != nil {
		return err
	}
	fmt.Printf("luna lives on %s, max on %s\n", ethereum.ChainID(), burrow.ChainID())

	// Luna migrates to Burrow (Move1 on Ethereum, Move2 on Burrow).
	res, err := u.MoveAndWait(breeder, 1, 2, luna.addr, 20*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("luna moved to %s in %.0fs (simulated), gas %d\n",
		burrow.ChainID(), res.Total().Seconds(), res.Move1Gas+res.Move2Gas)

	// Breed on Burrow; giveBirth deploys the kitten as a fresh contract.
	rec, err := u.MustCall(breeder, burrow, registry, contracts.EncodeCall("breed",
		contracts.ArgAddress(luna.addr), contracts.ArgUint(luna.salt),
		contracts.ArgAddress(max.addr), contracts.ArgUint(max.salt)),
		u256.Zero(), time.Minute)
	if err != nil {
		return err
	}
	var pregnancy uint64
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicPregnant {
			pregnancy = u256.FromBytes(log.Data).Uint64()
		}
	}
	rec, err = u.MustCall(breeder, burrow, registry,
		contracts.EncodeCall("giveBirth", contracts.ArgUint(pregnancy)), u256.Zero(), time.Minute)
	if err != nil {
		return err
	}
	var kitten scmove.Address
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicKittyCreated {
			if kitten, err = contracts.AsAddress(log.Data); err != nil {
				return err
			}
		}
	}
	genes, err := burrow.StaticCall(breeder.Address(), kitten, contracts.EncodeCall("genes"))
	if err != nil {
		return err
	}
	fmt.Printf("kitten %s born on %s with genes %x…\n", kitten, burrow.ChainID(), genes[:8])

	parents, err := burrow.StaticCall(breeder.Address(), kitten, contracts.EncodeCall("parents"))
	if err != nil {
		return err
	}
	fmt.Printf("lineage: %x… and %x…\n", parents[:4], parents[20:24])
	return nil
}

type cat struct {
	addr scmove.Address
	salt uint64
}

func promo(u *scmove.Universe, gameOwner *scmove.Client, c *chain.Chain,
	registry scmove.Address, genes byte, owner scmove.Address) (cat, error) {
	var g evm.Word
	g[31] = genes
	rec, err := u.MustCall(gameOwner, c, registry, contracts.EncodeCall("createPromoKitty",
		contracts.ArgWord(g), contracts.ArgAddress(owner)), u256.Zero(), 5*time.Minute)
	if err != nil {
		return cat{}, err
	}
	for i := len(rec.Logs) - 1; i >= 0; i-- {
		log := rec.Logs[i]
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicKittyCreated {
			addr, err := contracts.AsAddress(log.Data)
			if err != nil {
				return cat{}, err
			}
			ret, err := c.StaticCall(owner, addr, contracts.EncodeCall("salt"))
			if err != nil {
				return cat{}, err
			}
			return cat{addr: addr, salt: u256.FromBytes(ret).Uint64()}, nil
		}
	}
	return cat{}, fmt.Errorf("KittyCreated event missing")
}
