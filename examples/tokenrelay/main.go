// Tokenrelay reenacts Fig. 3 of the paper: currency pegging via the Move
// protocol. Alice locks ether inside a pegged-token contract on the
// Ethereum-like chain; the contract moves to the Burrow-like chain where
// Bob mints tokens provably backed by the locked funds; burning them moves
// the contract home, unlocking the currency.
package main

import (
	"fmt"
	"os"
	"time"

	"scmove"
	"scmove/internal/contracts"
	"scmove/internal/u256"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tokenrelay:", err)
		os.Exit(1)
	}
}

func run() error {
	u, err := scmove.NewUniverse(scmove.TwoChainConfig(2))
	if err != nil {
		return err
	}
	alice, bob := u.Client(0), u.Client(1)
	ethereum, burrow := u.Chain(1), u.Chain(2)
	const locked = uint64(1_000_000_000_000)

	// Deploy the relay on Ethereum and lock funds for Bob (Tcreate).
	relayAddr, err := u.MustDeploy(alice, ethereum, scmove.TokenRelayContract, nil,
		u256.Zero(), 5*time.Minute)
	if err != nil {
		return err
	}
	rec, err := u.MustCall(alice, ethereum, relayAddr, contracts.EncodeCall("create",
		contracts.ArgUint(uint64(burrow.ChainID())), contracts.ArgAddress(bob.Address())),
		u256.FromUint64(locked), 5*time.Minute)
	if err != nil {
		return err
	}
	var pegged scmove.Address
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicRelayCreated {
			if pegged, err = contracts.AsAddress(log.Data); err != nil {
				return err
			}
		}
	}
	fmt.Printf("locked %d wei in pegged contract %s (Move1 ran at creation)\n", locked, pegged)

	// Bob completes the move (any client may finish a pending move, §III-B).
	if _, err := u.CompleteAndWait(bob, 1, 2, pegged, 15*time.Minute); err != nil {
		return err
	}
	fmt.Printf("pegged contract recreated on %s\n", burrow.ChainID())

	// Tmint: Bob mints tokens backed by the ether locked on Ethereum.
	if _, err := u.MustCall(bob, burrow, pegged, contracts.EncodeCall("mint"),
		u256.Zero(), time.Minute); err != nil {
		return err
	}
	bal, err := burrow.StaticCall(bob.Address(), pegged,
		contracts.EncodeCall("tokenBalance", contracts.ArgAddress(bob.Address())))
	if err != nil {
		return err
	}
	fmt.Printf("bob minted %s pegged tokens on %s\n", u256.FromBytes(bal), burrow.ChainID())

	// Tokens circulate on Burrow like any balance.
	if _, err := u.MustCall(bob, burrow, pegged, contracts.EncodeCall("tokenTransfer",
		contracts.ArgAddress(alice.Address()), contracts.ArgU256(u256.FromUint64(400))),
		u256.Zero(), time.Minute); err != nil {
		return err
	}
	fmt.Println("bob paid alice 400 pegged tokens on the Burrow chain")
	if _, err := u.MustCall(alice, burrow, pegged, contracts.EncodeCall("tokenTransfer",
		contracts.ArgAddress(bob.Address()), contracts.ArgU256(u256.FromUint64(400))),
		u256.Zero(), time.Minute); err != nil {
		return err
	}

	// Burn everything and send the contract home; withdrawing on Ethereum
	// unlocks the original currency.
	if _, err := u.MustCall(bob, burrow, pegged, contracts.EncodeCall("burnAndReturn"),
		u256.Zero(), time.Minute); err != nil {
		return err
	}
	if _, err := u.CompleteAndWait(bob, 2, 1, pegged, 15*time.Minute); err != nil {
		return err
	}
	before := ethereum.StateDB().GetBalance(bob.Address())
	if _, err := u.MustCall(bob, ethereum, pegged, contracts.EncodeCall("withdraw"),
		u256.Zero(), 5*time.Minute); err != nil {
		return err
	}
	gained := ethereum.StateDB().GetBalance(bob.Address()).Sub(before)
	fmt.Printf("bob withdrew on %s: +%s wei (locked amount minus the tx fee)\n",
		ethereum.ChainID(), gained)
	return nil
}
