// Quickstart: deploy a movable contract on the Burrow-like chain and move
// it to the Ethereum-like chain with one call, watching the protocol's
// phases (Move1 lock → p-block proof wait → Move2 recreation).
package main

import (
	"fmt"
	"os"
	"time"

	"scmove"
	"scmove/internal/contracts"
	"scmove/internal/u256"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A two-chain universe: chain 1 is Ethereum-like (PoW, 15 s blocks,
	// p = 6), chain 2 is Burrow-like (BFT, 5 s blocks, p = 2). One funded
	// client. Everything runs on a simulated clock, so this finishes in
	// milliseconds of wall time.
	u, err := scmove.NewUniverse(scmove.TwoChainConfig(1))
	if err != nil {
		return err
	}
	client := u.Client(0)
	burrow, ethereum := u.Chain(2), u.Chain(1)

	// Deploy a Store contract with ten 32-byte state variables on Burrow.
	store, err := u.MustDeploy(client, burrow, scmove.StoreContract,
		contracts.StoreConstructorArgs(client.Address(), 10), u256.Zero(), time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("deployed Store at %s on %s\n", store, burrow.ChainID())

	before, err := burrow.StaticCall(client.Address(), store,
		contracts.EncodeCall("get", contracts.ArgUint(3)))
	if err != nil {
		return err
	}

	// Move it: Move1 locks it on Burrow, the relayer builds the Merkle
	// proof, waits until Ethereum's light client holds the source header
	// p blocks deep, and submits Move2.
	res, err := u.MoveAndWait(client, 2, 1, store, 10*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("moved %s to %s:\n", store, ethereum.ChainID())
	fmt.Printf("  move1 (lock)        %8.1fs   gas %d\n", res.Move1Latency().Seconds(), res.Move1Gas)
	fmt.Printf("  wait p blocks+proof %8.1fs\n", res.WaitProofLatency().Seconds())
	fmt.Printf("  move2 (recreate)    %8.1fs   gas %d\n", res.Move2Latency().Seconds(), res.Move2Gas)
	fmt.Printf("  total               %8.1fs (simulated)\n", res.Total().Seconds())

	// The state is identical on the target chain, and the source copy is
	// locked but still readable.
	after, err := ethereum.StaticCall(client.Address(), store,
		contracts.EncodeCall("get", contracts.ArgUint(3)))
	if err != nil {
		return err
	}
	if string(before) != string(after) {
		return fmt.Errorf("state mismatch after move")
	}
	fmt.Printf("state variable 3 survived the move: %x…\n", after[:8])
	fmt.Printf("locations: chain 1 says %s, chain 2 tombstone says %s\n",
		ethereum.StateDB().GetLocation(store), burrow.StateDB().GetLocation(store))
	return nil
}
